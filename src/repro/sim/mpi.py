"""MPI replay semantics on top of the DES engine and the fabric.

This is the Dimemas half of the paper's co-simulation: each rank is a
simulation process that walks its trace — CPU bursts advance its clock,
MPI operations are executed against the matching layer and the network.

Protocol model:

* **eager** sends (size <= eager threshold): the payload is injected
  immediately; the sender unblocks when its HCA channel has drained the
  message, the receiver completes at last-byte arrival.
* **rendezvous** sends: an RTS control message (MPI latency) travels to
  the receiver; when the receiver matches it, a CTS returns (another MPI
  latency) and the payload transfer starts.  The sender unblocks when its
  buffer is drained, the receiver at arrival.
* **collectives** are expanded into the point-to-point schedules of
  :mod:`repro.sim.collectives` and executed through the same machinery,
  so collective traffic exercises the fabric (and the power mechanism)
  exactly like application point-to-point traffic.

Message matching is by exact ``(source, tag)`` (traces are explicit; no
wildcards), with the standard posted-receive / unexpected-message queues
per rank.

Nonblocking operations are **processless**.  An eager isend injects the
payload at call time and its request is just the *float* completion time
(the source-drain instant, known immediately); an irecv probes the
matching layer at call time and returns either that float (message
already there) or the posted completion :class:`Signal`.  A rendezvous
isend/send used to spawn a helper generator process per large message;
it is now a **signal-chained continuation** (:class:`_RendezvousSend`):
the RTS is injected inline, the CTS callback launches the payload
transfer, and a final timed event fires the completion signal — no new
process frame anywhere (``MPIWorld.helper_spawns`` stays 0 and the
replay drivers assert it).  WAIT/WAITALL drains the mixed request list
in one slice: pure-float requests reduce to a single absolute-time
sleep (:class:`~repro.sim.engine.At`) — or to no yield at all when
everything already completed — and only genuine signals pay the
:class:`~repro.sim.engine.AllOf` barrier.

Deadlock reports: in-flight rendezvous continuations are invisible to
the engine's process table, so :class:`MPIWorld` registers a
``blocked_reporter`` with the engine that renders them under the same
precomputed per-rank helper names (``isend<rank>``) the spawned helpers
used to carry.

Power coupling: a ``power_hook(link, t) -> usable_t`` callable is invoked
by the fabric whenever a transfer finds a link below full width.  The
managed run wires this to :meth:`repro.power.controller.ManagedLink.
request_full`, which performs the emergency reactivation and yields the
misprediction penalty.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..constants import EAGER_THRESHOLD_BYTES, MPI_LATENCY_US
from ..network.fabric import Fabric
from ..trace.events import (
    Collective,
    Compute,
    MPICall,
    MPIEvent,
    PointToPoint,
    TraceRecord,
)
from . import collectives as coll
from .collectives import COLLECTIVE_TAG_BASE, COLLECTIVE_TAG_STRIDE
from .engine import AllOf, At, Delay, Engine, Signal, SimulationError
from .program import (
    OP_COLLECTIVE,
    OP_DELAY,
    OP_DELAY_OVH,
    OP_IRECV,
    OP_ISEND,
    OP_OVERHEAD,
    OP_OVH_DELAY,
    OP_RECV,
    OP_SEND,
    OP_SENDRECV,
    OP_SHUTDOWN,
    OP_WAITALL,
    STEP_RECV,
    STEP_SEND_ASYNC,
    RankProgram,
)


@dataclass(slots=True)
class _Envelope:
    """An in-flight message (payload or rendezvous RTS)."""

    src: int
    dst: int
    tag: int
    size_bytes: int
    is_rts: bool = False
    #: eager: fired at last-byte arrival. rendezvous: fired when payload lands.
    data_signal: Signal | None = None
    #: rendezvous only: fired when the receiver matches the RTS.
    cts_signal: Signal | None = None


@dataclass(slots=True)
class _RankContext:
    rank: int
    unexpected: dict[tuple[int, int], deque] = field(default_factory=dict)
    #: posted receives: (src, tag) -> deque of completion Signals
    posted: dict[tuple[int, int], deque] = field(default_factory=dict)
    collective_instance: int = 0
    #: mixed completion requests: floats (processless eager ops, the
    #: value is the known completion time) and Signals (rendezvous /
    #: posted receives)
    pending_requests: list = field(default_factory=list)

    def pop_unexpected(self, src: int, tag: int) -> _Envelope | None:
        q = self.unexpected.get((src, tag))
        if q:
            return q.popleft()
        return None

    def pop_posted(self, src: int, tag: int) -> Signal | None:
        q = self.posted.get((src, tag))
        if q:
            return q.popleft()
        return None

    def add_unexpected(self, env: _Envelope) -> None:
        key = (env.src, env.tag)
        q = self.unexpected.get(key)
        if q is None:
            self.unexpected[key] = q = deque()
        q.append(env)

    def add_posted(self, src: int, tag: int, recv: Signal) -> None:
        # get-then-insert instead of setdefault: the hot path must not
        # allocate a fresh deque per call just to throw it away
        key = (src, tag)
        q = self.posted.get(key)
        if q is None:
            self.posted[key] = q = deque()
        q.append(recv)


PowerHook = Callable[[object, float], float]


@dataclass(slots=True)
class RankDirective:
    """Managed-run instrumentation attached to one MPI call of one rank.

    ``pre_overhead_us``/``post_overhead_us`` are PMPI software costs
    charged before/after the call; ``shutdown_timer_us`` (if set) issues
    the turn-off-lanes instruction right after the call with that timer
    value programmed (Algorithm 3's ``predictedIdleTime``).

    ``shutdown_delay_us`` postpones the turn-off instruction relative to
    the call's exit; the paper's mechanism always uses 0 (shut down
    immediately after the predicted gram), while the *reactive* hardware
    baseline (:mod:`repro.baselines`) uses it to model "power down after
    the link has been idle for tau".

    The fast replay kernel never reads directives at run time: the
    compiled-program layer (:func:`repro.sim.program.compile_trace` with
    ``directives=``) lowers them into dedicated opcodes at compile time.
    The reference interpreter (:meth:`MPIWorld.rank_program`) keeps the
    per-call dict probes as the oracle.
    """

    pre_overhead_us: float = 0.0
    post_overhead_us: float = 0.0
    shutdown_timer_us: float | None = None
    shutdown_delay_us: float = 0.0


class _RendezvousSend:
    """Zero-spawn rendezvous send: a continuation chained on signals.

    Replaces the helper generator process that used to run one
    rendezvous isend/send-completion per large message.  The lifecycle
    mirrors the old helper exactly — RTS flight, CTS wait, payload
    transfer, source-drain completion — but each step is a plain
    callback on the engine: no generator frame, no process-table entry,
    no ``spawn`` event.  Instances are pooled on the world
    (``_rdv_pool``) and tracked per rank for deadlock reports.
    """

    __slots__ = ("world", "rank", "dst", "size", "done", "cts", "data")

    def __init__(self, world: "MPIWorld") -> None:
        self.world = world
        self.rank = 0
        self.dst = 0
        self.size = 0
        self.done: Signal | None = None
        self.cts: Signal | None = None
        self.data: Signal | None = None

    def _on_cts(self, _value) -> None:
        """Receiver matched the RTS; CTS flew back — start the payload."""

        world = self.world
        engine = world.engine
        arrive_us, src_release = world.fabric.transfer_hot(
            self.rank, self.dst, self.size, engine.now + MPI_LATENCY_US,
            world.power_hook,
        )
        self.data.fire_at(arrive_us, arrive_us)
        now = engine.now
        engine._schedule(
            now + (src_release - now if src_release > now else 0.0),
            self._finish,
            None,
        )

    def _finish(self, _arg) -> None:
        """Source buffer drained: complete the send, recycle the pieces."""

        world = self.world
        engine = world.engine
        self.done.fire(engine.now)
        world._rdv_inflight[self.rank] -= 1
        engine.recycle_signal(self.cts)
        self.done = self.cts = self.data = None
        world._rdv_pool.append(self)


class MPIWorld:
    """Shared state of one replay: engine + fabric + matching layer."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        nranks: int,
        *,
        eager_threshold_bytes: int = EAGER_THRESHOLD_BYTES,
        power_hook: PowerHook | None = None,
        cpu_speedup: float = 1.0,
        name_prefix: str = "",
    ) -> None:
        if nranks > fabric.topo.num_hosts:
            raise ValueError(
                f"{nranks} ranks do not fit in a fabric with "
                f"{fabric.topo.num_hosts} hosts"
            )
        if cpu_speedup <= 0:
            raise ValueError("cpu_speedup must be positive")
        self.engine = engine
        self.fabric = fabric
        self.nranks = nranks
        self.eager_threshold = eager_threshold_bytes
        self.power_hook = power_hook
        self.cpu_speedup = cpu_speedup
        self.ranks = [_RankContext(r) for r in range(nranks)]
        self.event_logs: list[list[MPIEvent]] = [[] for _ in range(nranks)]
        #: free-list of dead envelopes (consumed by the matching layer)
        self._env_pool: list[_Envelope] = []
        #: free-list of completed rendezvous continuations
        self._rdv_pool: list[_RendezvousSend] = []
        #: per-rank count of in-flight rendezvous continuations, for
        #: deadlock reports (they have no process-table entry)
        self._rdv_inflight = [0] * nranks
        # per-rank helper names, precomputed so deadlock reports render
        # a stuck rendezvous send under the same name the spawned
        # helper process used to carry; ``name_prefix`` namespaces them
        # (and the world's identity in reports) when several worlds —
        # cluster jobs — share one engine
        self.name_prefix = name_prefix
        self._isend_names = [f"{name_prefix}isend{r}" for r in range(nranks)]
        engine.blocked_reporter = self._blocked_helpers

    # -------------------------------------------------------------- pooling

    def _new_envelope(
        self,
        src: int,
        dst: int,
        tag: int,
        size_bytes: int,
        is_rts: bool = False,
        data_signal: Signal | None = None,
        cts_signal: Signal | None = None,
    ) -> _Envelope:
        pool = self._env_pool
        if pool:
            env = pool.pop()
            env.src = src
            env.dst = dst
            env.tag = tag
            env.size_bytes = size_bytes
            env.is_rts = is_rts
            env.data_signal = data_signal
            env.cts_signal = cts_signal
            return env
        return _Envelope(src, dst, tag, size_bytes, is_rts, data_signal, cts_signal)

    def _recycle_envelope(self, env: _Envelope) -> None:
        """Free an envelope the matching layer has fully consumed."""

        env.data_signal = None
        env.cts_signal = None
        self._env_pool.append(env)

    # ------------------------------------------------------------ reporting

    @property
    def helper_spawns(self) -> int:
        """Helper processes spawned by the MPI layer (the no-spawn
        invariant).

        The zero-spawn rendezvous/irecv refactor removed every helper
        spawn site, so only the per-rank replay processes ever hit
        ``Engine.spawn`` and this is 0 on **both** kernels.  Counted
        from the engine's lifetime spawn counter rather than hardcoded,
        so a reintroduced helper spawn trips the bench detail and the
        regression tests immediately.
        """

        spawned = self.engine.spawn_count
        return spawned - self.nranks if spawned > self.nranks else 0

    def _blocked_helpers(self) -> list[str]:
        """Deadlock-report entries for processless in-flight helpers."""

        out: list[str] = []
        for rank, n in enumerate(self._rdv_inflight):
            if n > 0:
                name = self._isend_names[rank]
                out.append(
                    f"{name} (rendezvous in flight)"
                    if n == 1
                    else f"{name} (rendezvous in flight x{n})"
                )
        return out

    # ------------------------------------------------------------------ rank

    def rank_program(
        self,
        rank: int,
        records: Sequence[TraceRecord],
        directives: dict[int, RankDirective] | None = None,
        on_shutdown: Callable[[int, float, float, float], None] | None = None,
    ):
        """Generator executing one rank's trace (the reference oracle).

        ``directives`` maps MPI-call index -> :class:`RankDirective`;
        ``on_shutdown(rank, t_us, timer_us, delay_us)`` is invoked when a
        shutdown directive executes (the managed run wires it to the
        rank's :class:`~repro.power.controller.ManagedLink`).  The fast
        kernel compiles directives into the instruction stream instead
        (:func:`repro.sim.program.compile_trace`); this interpreter keeps
        the per-call dict probes as the equivalence oracle.
        """

        engine = self.engine
        log = self.event_logs[rank]
        call_index = 0
        for rec in records:
            if isinstance(rec, Compute):
                yield Delay(rec.duration_us / self.cpu_speedup)
                continue
            directive = directives.get(call_index) if directives else None
            if directive and directive.pre_overhead_us > 0:
                yield Delay(directive.pre_overhead_us)
            enter = engine.now
            if isinstance(rec, PointToPoint):
                yield from self._execute_p2p(rank, rec)
            elif isinstance(rec, Collective):
                yield from self._execute_collective(rank, rec)
            else:  # pragma: no cover - record types are closed
                raise SimulationError(f"unknown record {rec!r}")
            log.append(MPIEvent(rec.call, enter, engine.now))
            if directive and directive.post_overhead_us > 0:
                yield Delay(directive.post_overhead_us)
            if (
                directive
                and directive.shutdown_timer_us is not None
                and on_shutdown is not None
            ):
                on_shutdown(
                    rank,
                    engine.now,
                    directive.shutdown_timer_us,
                    directive.shutdown_delay_us,
                )
            call_index += 1

    def run_program(
        self,
        rank: int,
        program: RankProgram,
        on_shutdown: Callable[[int, float, float, float], None] | None = None,
    ):
        """Generator executing one rank's *compiled* program.

        The fast twin of :meth:`rank_program`: dispatches on small-integer
        opcodes and inlines the hot operations (eager sends, receives,
        collective step loops, request draining) so the whole rank runs
        as a single generator frame.  Managed-run directives arrive
        pre-compiled as ``OP_OVERHEAD`` / ``OP_SHUTDOWN`` /
        fused-delay instructions — there is no per-call directive lookup
        here.  It must drive the engine through exactly the same request
        sequence as the interpreter on the same records+directives (bare
        floats stand in for :class:`Delay`; the one-event fused delays
        reach the identical absolute timestamps through an :class:`At`),
        which the differential harness asserts bit-for-bit.
        """

        engine = self.engine
        ctx = self.ranks[rank]
        log_append = self.event_logs[rank].append
        fabric = self.fabric
        eager_threshold = self.eager_threshold
        speed = self.cpu_speedup
        power_hook = self.power_hook
        env_pool = self._env_pool
        new_env = self._new_envelope
        recycle_env = self._recycle_envelope
        new_signal = engine.new_signal
        signal_pool = engine._signal_pool
        recycle_signal = engine.recycle_signal
        schedule = engine._schedule
        arrive = self._arrive
        transfer = fabric.transfer_hot
        start_rdv = self._start_rendezvous
        unexpected = ctx.unexpected
        posted = ctx.posted
        mpi_latency = MPI_LATENCY_US
        #: one reusable absolute-time request per frame — the engine
        #: reads ``t_us`` synchronously at dispatch, so rewriting it
        #: between yields is safe and allocation-free
        at = At(0.0)
        for ins in program.code:
            op = ins[0]
            if op == OP_DELAY:
                yield ins[1] / speed
                continue
            if op == OP_DELAY_OVH:
                # coalesced compute burst + PPA overhead charged right
                # after it: one queue event landing on the exact
                # timestamp two chained delays would have reached
                at.t_us = (engine.now + ins[1] / speed) + ins[2]
                yield at
                continue
            if op == OP_OVERHEAD:
                yield ins[1]
                continue
            if op == OP_OVH_DELAY:
                at.t_us = (engine.now + ins[1]) + ins[2] / speed
                yield at
                continue
            if op == OP_SHUTDOWN:
                # same None-guard as the interpreter: a managed-compiled
                # program run without a wired power controller skips the
                # turn-off instead of diverging from the oracle
                if on_shutdown is not None:
                    on_shutdown(rank, engine.now, ins[1], ins[2])
                continue
            enter = engine.now
            if op == OP_COLLECTIVE:
                instance = ctx.collective_instance
                ctx.collective_instance = instance + 1
                base_tag = COLLECTIVE_TAG_BASE + instance * COLLECTIVE_TAG_STRIDE
                # software entry cost of the collective call itself
                yield mpi_latency
                tmax = 0.0
                pending = None
                for sop, peer, size, rel_tag in ins[2]:
                    if sop == STEP_RECV:
                        key = (peer, rel_tag + base_tag)
                        q = unexpected.get(key)
                        env = q.popleft() if q else None
                        if env is None:
                            if signal_pool:
                                sig = signal_pool.pop()
                                sig.name = "recv"
                                sig.fired = False
                                sig.value = None
                            else:
                                sig = Signal(engine, "recv")
                            pq = posted.get(key)
                            if pq is None:
                                posted[key] = pq = deque()
                            pq.append(sig)
                            yield sig
                            recycle_signal(sig)
                        elif env.is_rts:
                            cts, data = env.cts_signal, env.data_signal
                            recycle_env(env)
                            cts.fire(engine.now)
                            yield data
                        else:
                            recycle_env(env)
                    elif sop == STEP_SEND_ASYNC:
                        tag = rel_tag + base_tag
                        if size <= eager_threshold:
                            arrive_us, src_release = transfer(
                                rank, peer, size, engine.now, power_hook
                            )
                            if env_pool:
                                env = env_pool.pop()
                                env.src = rank
                                env.dst = peer
                                env.tag = tag
                                env.size_bytes = size
                                env.is_rts = False
                            else:
                                env = _Envelope(rank, peer, tag, size)
                            schedule(arrive_us, arrive, env)
                            now_us = engine.now
                            rel = src_release if src_release > now_us else now_us
                            if rel > tmax:
                                tmax = rel
                        elif pending is None:
                            pending = [start_rdv(rank, peer, size, tag)]
                        else:
                            pending.append(start_rdv(rank, peer, size, tag))
                    else:  # STEP_SEND: blocking send
                        tag = rel_tag + base_tag
                        if size <= eager_threshold:
                            arrive_us, src_release = transfer(
                                rank, peer, size, engine.now, power_hook
                            )
                            schedule(
                                arrive_us, arrive,
                                new_env(rank, peer, tag, size),
                            )
                            now_us = engine.now
                            if src_release > now_us:
                                yield src_release - now_us
                        else:
                            cts = new_signal("cts")
                            data = new_signal("data")
                            schedule(
                                engine.now + mpi_latency, arrive,
                                new_env(rank, peer, tag, size, True, data, cts),
                            )
                            yield cts
                            arrive_us, src_release = transfer(
                                rank, peer, size, engine.now + mpi_latency,
                                power_hook,
                            )
                            data.fire_at(arrive_us, arrive_us)
                            now_us = engine.now
                            if src_release > now_us:
                                yield src_release - now_us
                if pending is not None:
                    real = None
                    for sig in pending:
                        if sig.fired:
                            recycle_signal(sig)
                        elif real is None:
                            real = [sig]
                        else:
                            real.append(sig)
                    if real is not None:
                        yield AllOf(real)
                        for sig in real:
                            recycle_signal(sig)
                if tmax > engine.now:
                    at.t_us = tmax
                    yield at
            elif op == OP_SENDRECV:
                peer, size, tag = ins[2], ins[3], ins[4]
                if size <= eager_threshold:
                    arrive_us, src_release = transfer(
                        rank, peer, size, engine.now, power_hook
                    )
                    if env_pool:
                        env = env_pool.pop()
                        env.src = rank
                        env.dst = peer
                        env.tag = tag
                        env.size_bytes = size
                        env.is_rts = False
                    else:
                        env = _Envelope(rank, peer, tag, size)
                    schedule(arrive_us, arrive, env)
                    now_us = engine.now
                    send_done = src_release if src_release > now_us else now_us
                else:
                    send_done = start_rdv(rank, peer, size, tag)
                key = (ins[5], tag)
                q = unexpected.get(key)
                env = q.popleft() if q else None
                if env is None:
                    if signal_pool:
                        sig = signal_pool.pop()
                        sig.name = "recv"
                        sig.fired = False
                        sig.value = None
                    else:
                        sig = Signal(engine, "recv")
                    pq = posted.get(key)
                    if pq is None:
                        posted[key] = pq = deque()
                    pq.append(sig)
                    yield sig
                    recycle_signal(sig)
                elif env.is_rts:
                    cts, data = env.cts_signal, env.data_signal
                    recycle_env(env)
                    cts.fire(engine.now)
                    yield data
                else:
                    recycle_env(env)
                if send_done.__class__ is float:
                    if send_done > engine.now:
                        at.t_us = send_done
                        yield at
                elif send_done.fired:
                    recycle_signal(send_done)
                else:
                    yield send_done
                    recycle_signal(send_done)
            elif op == OP_SEND:
                peer, size, tag = ins[2], ins[3], ins[4]
                if size <= eager_threshold:
                    arrive_us, src_release = transfer(
                        rank, peer, size, engine.now, power_hook
                    )
                    if env_pool:
                        env = env_pool.pop()
                        env.src = rank
                        env.dst = peer
                        env.tag = tag
                        env.size_bytes = size
                        env.is_rts = False
                    else:
                        env = _Envelope(rank, peer, tag, size)
                    schedule(arrive_us, arrive, env)
                    now_us = engine.now
                    if src_release > now_us:
                        yield src_release - now_us
                else:
                    cts = new_signal("cts")
                    data = new_signal("data")
                    schedule(
                        engine.now + mpi_latency, arrive,
                        new_env(rank, peer, tag, size, True, data, cts),
                    )
                    yield cts
                    arrive_us, src_release = transfer(
                        rank, peer, size, engine.now + mpi_latency,
                        power_hook,
                    )
                    data.fire_at(arrive_us, arrive_us)
                    now_us = engine.now
                    if src_release > now_us:
                        yield src_release - now_us
            elif op == OP_RECV:
                key = (ins[2], ins[3])
                q = unexpected.get(key)
                env = q.popleft() if q else None
                if env is None:
                    if signal_pool:
                        sig = signal_pool.pop()
                        sig.name = "recv"
                        sig.fired = False
                        sig.value = None
                    else:
                        sig = Signal(engine, "recv")
                    pq = posted.get(key)
                    if pq is None:
                        posted[key] = pq = deque()
                    pq.append(sig)
                    yield sig
                    recycle_signal(sig)
                elif env.is_rts:
                    cts, data = env.cts_signal, env.data_signal
                    recycle_env(env)
                    cts.fire(engine.now)
                    yield data
                else:
                    recycle_env(env)
            elif op == OP_ISEND:
                peer, size, tag = ins[2], ins[3], ins[4]
                if size <= eager_threshold:
                    arrive_us, src_release = transfer(
                        rank, peer, size, engine.now, power_hook
                    )
                    if env_pool:
                        env = env_pool.pop()
                        env.src = rank
                        env.dst = peer
                        env.tag = tag
                        env.size_bytes = size
                        env.is_rts = False
                    else:
                        env = _Envelope(rank, peer, tag, size)
                    schedule(arrive_us, arrive, env)
                    now_us = engine.now
                    ctx.pending_requests.append(
                        src_release if src_release > now_us else now_us
                    )
                else:
                    ctx.pending_requests.append(
                        start_rdv(rank, peer, size, tag)
                    )
            elif op == OP_IRECV:
                key = (ins[2], ins[3])
                q = unexpected.get(key)
                env = q.popleft() if q else None
                if env is None:
                    if signal_pool:
                        sig = signal_pool.pop()
                        sig.name = "recv"
                        sig.fired = False
                        sig.value = None
                    else:
                        sig = Signal(engine, "recv")
                    pq = posted.get(key)
                    if pq is None:
                        posted[key] = pq = deque()
                    pq.append(sig)
                    ctx.pending_requests.append(sig)
                elif env.is_rts:
                    cts, data = env.cts_signal, env.data_signal
                    recycle_env(env)
                    cts.fire(engine.now)
                    ctx.pending_requests.append(data)
                else:
                    recycle_env(env)
                    ctx.pending_requests.append(engine.now)
            elif op == OP_WAITALL:
                pending = ctx.pending_requests
                if pending:
                    ctx.pending_requests = []
                    tmax = 0.0
                    real = None
                    for req in pending:
                        if req.__class__ is float:
                            if req > tmax:
                                tmax = req
                        elif req.fired:
                            recycle_signal(req)
                        elif real is None:
                            real = [req]
                        else:
                            real.append(req)
                    if real is not None:
                        yield AllOf(real)
                        for sig in real:
                            recycle_signal(sig)
                    if tmax > engine.now:
                        at.t_us = tmax
                        yield at
            else:  # pragma: no cover - opcodes are closed
                raise SimulationError(f"unknown opcode {op!r}")
            log_append(MPIEvent(ins[1], enter, engine.now))

    # ----------------------------------------------------------- primitives

    def _transfer(self, src: int, dst: int, size: int, earliest: float):
        """Push one message through the fabric: ``(arrive, src_release)``."""

        return self.fabric.transfer_hot(
            src, dst, size, earliest, self.power_hook
        )

    def _deliver(self, env: _Envelope, t_us: float) -> None:
        """Schedule envelope delivery into the receiver's matching layer."""

        self.engine._schedule(t_us, self._arrive, env)

    def _arrive(self, env: _Envelope) -> None:
        ctx = self.ranks[env.dst]
        key = (env.src, env.tag)
        q = ctx.posted.get(key)
        if not q:
            uq = ctx.unexpected.get(key)
            if uq is None:
                ctx.unexpected[key] = uq = deque()
            uq.append(env)
            return
        sig = q.popleft()
        if env.is_rts:
            assert env.cts_signal is not None
            env.cts_signal.fire(self.engine.now)
            # the posted recv completes when the payload lands
            assert env.data_signal is not None
            env.data_signal.add_callback(sig.fire)
            env.data_signal = None
            env.cts_signal = None
        else:
            sig.fire(self.engine.now)
        self._env_pool.append(env)

    def _start_rendezvous(self, rank: int, dst: int, size: int,
                          tag: int) -> Signal:
        """Launch a zero-spawn rendezvous send; returns its completion
        signal.  The continuation performs the exact step sequence the
        old helper process did — RTS delivery now, payload transfer on
        CTS, completion fire at source drain — without a process frame.
        """

        engine = self.engine
        done = engine.new_signal("isend")
        pool = self._rdv_pool
        if pool:
            rdv = pool.pop()
        else:
            rdv = _RendezvousSend(self)
        rdv.rank = rank
        rdv.dst = dst
        rdv.size = size
        rdv.done = done
        cts = engine.new_signal("cts")
        data = engine.new_signal("data")
        rdv.cts = cts
        rdv.data = data
        env = self._new_envelope(rank, dst, tag, size, is_rts=True,
                                 data_signal=data, cts_signal=cts)
        self._deliver(env, engine.now + MPI_LATENCY_US)  # RTS flight
        cts.add_callback(rdv._on_cts)
        self._rdv_inflight[rank] += 1
        return done

    def _send(self, rank: int, dst: int, size: int, tag: int):
        """Blocking-send generator (eager or rendezvous)."""

        engine = self.engine
        if size <= self.eager_threshold:
            # eager: the receiver completes off the envelope's arrival
            # event alone — no payload signal is needed, the matching
            # layer fires the posted recv (or queues the envelope)
            arrive_us, src_release = self._transfer(rank, dst, size, engine.now)
            env = self._new_envelope(rank, dst, tag, size)
            self._deliver(env, arrive_us)
            now = engine.now
            if src_release > now:
                yield Delay(src_release - now)
            return
        # rendezvous
        cts = engine.new_signal("cts")
        data = engine.new_signal("data")
        env = self._new_envelope(rank, dst, tag, size, is_rts=True,
                                 data_signal=data, cts_signal=cts)
        self._deliver(env, engine.now + MPI_LATENCY_US)  # RTS flight
        yield cts  # receiver matched; CTS flies back
        start = engine.now + MPI_LATENCY_US
        arrive_us, src_release = self._transfer(rank, dst, size, start)
        data.fire_at(arrive_us, arrive_us)
        now = engine.now
        if src_release > now:
            yield Delay(src_release - now)

    def _recv(self, rank: int, src: int, tag: int):
        """Blocking-receive generator."""

        engine = self.engine
        ctx = self.ranks[rank]
        env = ctx.pop_unexpected(src, tag)
        if env is None:
            sig = engine.new_signal("recv")
            ctx.add_posted(src, tag, sig)
            yield sig
            # the signal's only waiter (this process) has been resumed
            engine.recycle_signal(sig)
            return
        if env.is_rts:
            cts, data = env.cts_signal, env.data_signal
            assert cts is not None and data is not None
            self._recycle_envelope(env)
            cts.fire(engine.now)
            yield data
            return
        # eager payload already arrived; receive completes immediately
        self._recycle_envelope(env)

    def _wait_requests(self, requests: list):
        """Drain a mixed request list (the WAIT/WAITALL semantics).

        Floats are known completion times of processless operations:
        they reduce to one absolute-time sleep at their maximum — or to
        *no* scheduler round trip at all when everything already
        completed, so a slice of consecutive nonblocking ops ends in the
        same engine event it started in.  Signals (rendezvous sends,
        posted receives) wait through one :class:`AllOf` barrier and are
        recycled once drained.
        """

        engine = self.engine
        recycle = engine.recycle_signal
        tmax = 0.0
        real = None
        for req in requests:
            if req.__class__ is float:
                if req > tmax:
                    tmax = req
            elif req.fired:
                # completed while we weren't looking: no barrier, no
                # queue round trip — drain it on the spot
                recycle(req)
            elif real is None:
                real = [req]
            else:
                real.append(req)
        if real is not None:
            yield AllOf(real)
            for sig in real:
                recycle(sig)
        if tmax > engine.now:
            yield At(tmax)

    def isend(self, rank: int, dst: int, size: int, tag: int):
        """Nonblocking send; returns its completion request.

        Eager messages are processless: the payload is injected into the
        fabric immediately (real eager isends hand the buffer to the HCA
        at call time) and the request is simply the *float* source-drain
        time — no signal, no scheduled completion event.  Rendezvous
        sends need the CTS handshake and return the completion
        :class:`Signal` of a zero-spawn continuation
        (:class:`_RendezvousSend`).
        """

        if size <= self.eager_threshold:
            engine = self.engine
            arrive_us, src_release = self._transfer(rank, dst, size, engine.now)
            self._deliver(self._new_envelope(rank, dst, tag, size), arrive_us)
            now = engine.now
            return src_release if src_release > now else now
        return self._start_rendezvous(rank, dst, size, tag)

    def irecv(self, rank: int, src: int, tag: int):
        """Nonblocking receive; returns its completion request.

        Probes the matching layer at call time (no helper process): an
        already-arrived eager payload completes immediately (the request
        is the float ``now``), an RTS is matched on the spot (CTS fires,
        the request is the payload signal), otherwise the receive is
        posted and its signal returned.
        """

        engine = self.engine
        ctx = self.ranks[rank]
        env = ctx.pop_unexpected(src, tag)
        if env is None:
            sig = engine.new_signal("recv")
            ctx.add_posted(src, tag, sig)
            return sig
        if env.is_rts:
            cts, data = env.cts_signal, env.data_signal
            self._recycle_envelope(env)
            cts.fire(engine.now)
            return data
        self._recycle_envelope(env)
        return engine.now

    # ------------------------------------------------------------ operations

    def _execute_p2p(self, rank: int, rec: PointToPoint):
        call = rec.call
        ctx = self.ranks[rank]
        if call in (MPICall.SEND,):
            yield from self._send(rank, rec.peer, rec.size_bytes, rec.tag)
        elif call in (MPICall.RECV,):
            yield from self._recv(rank, rec.peer, rec.tag)
        elif call is MPICall.ISEND:
            ctx.pending_requests.append(
                self.isend(rank, rec.peer, rec.size_bytes, rec.tag)
            )
        elif call is MPICall.IRECV:
            ctx.pending_requests.append(self.irecv(rank, rec.peer, rec.tag))
        elif call in (MPICall.WAIT, MPICall.WAITALL):
            pending, ctx.pending_requests = ctx.pending_requests, []
            if pending:
                yield from self._wait_requests(pending)
        elif call in (MPICall.SENDRECV, MPICall.SENDRECV_REPLACE):
            send_done = self.isend(rank, rec.peer, rec.size_bytes, rec.tag)
            src = rec.recv_peer if rec.recv_peer is not None else rec.peer
            yield from self._recv(rank, src, rec.tag)
            if send_done.__class__ is float:
                if send_done > self.engine.now:
                    yield At(send_done)
            elif send_done.fired:
                self.engine.recycle_signal(send_done)
            else:
                yield send_done
                self.engine.recycle_signal(send_done)
        else:  # pragma: no cover
            raise SimulationError(f"unhandled point-to-point call {call!r}")

    def _execute_collective(self, rank: int, rec: Collective):
        ctx = self.ranks[rank]
        instance = ctx.collective_instance
        ctx.collective_instance += 1
        # memoised relative schedule for this shape; tags rebased per
        # instance so occurrences never share tag space
        steps = coll.schedule_steps(
            rec.call, rank, self.nranks, rec.size_bytes, rec.root
        )
        base_tag = coll.base_tag_for(instance)
        # software entry cost of the collective call itself
        yield Delay(MPI_LATENCY_US)
        pending: list = []
        for step in steps:
            if step.kind == "send":
                if step.concurrent:
                    pending.append(
                        self.isend(rank, step.peer, step.size_bytes,
                                   step.tag + base_tag)
                    )
                else:
                    yield from self._send(rank, step.peer, step.size_bytes,
                                          step.tag + base_tag)
            else:
                yield from self._recv(rank, step.peer, step.tag + base_tag)
        if pending:
            yield from self._wait_requests(pending)
