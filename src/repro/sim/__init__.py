"""Simulator substrate: DES engine, MPI replay, collectives, replays.

The Dimemas+Venus co-simulation of the paper, in two layers:

* :mod:`repro.sim.engine` / :mod:`repro.sim.mpi` — discrete-event kernel
  and MPI semantics (matching, eager/rendezvous, collectives);
* :mod:`repro.sim.dimemas` — the trace replay drivers used by every
  experiment (baseline and managed runs).
"""

from .dimemas import ReplayConfig, replay_baseline, replay_managed
from .engine import AllOf, Delay, Engine, Signal, SimulationError
from .mpi import MPIWorld, RankDirective
from .results import BaselineResult, ManagedResult
from .venus import (
    LinkUsage,
    fabric_usage,
    host_link_idle_distribution,
    link_usage,
)

__all__ = [
    "ReplayConfig",
    "replay_baseline",
    "replay_managed",
    "AllOf",
    "Delay",
    "Engine",
    "Signal",
    "SimulationError",
    "MPIWorld",
    "RankDirective",
    "BaselineResult",
    "ManagedResult",
    "LinkUsage",
    "fabric_usage",
    "host_link_idle_distribution",
    "link_usage",
]
