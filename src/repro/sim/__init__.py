"""Simulator substrate: DES engine, MPI replay, collectives, replays.

The Dimemas+Venus co-simulation of the paper, in two layers:

* :mod:`repro.sim.engine` / :mod:`repro.sim.mpi` — discrete-event kernel
  and MPI semantics (matching, eager/rendezvous, collectives);
* :mod:`repro.sim.dimemas` — the trace replay drivers used by every
  experiment (baseline and managed runs).

Replay architecture (the fast kernel)
-------------------------------------

A replay pushes every traced MPI operation through five layers; each one
precompiles or pools whatever is invariant across the run so that the
per-message hot path touches only flat, already-compiled state:

1. **Compiled rank programs** (:mod:`repro.sim.program`) — each rank's
   record list is lowered once per trace into a flat opcode stream
   (``compile_trace``): adjacent compute bursts coalesce into one
   delay, collectives resolve their memoised step schedules at compile
   time, and :meth:`~repro.sim.mpi.MPIWorld.run_program` executes the
   whole rank as a single generator frame dispatching on small-int
   opcodes.  Managed-run directives compile too
   (``CompiledTrace.with_directives``): PPA overheads and shutdown
   instructions become dedicated opcodes, fused into adjacent delays
   where semantics allow, so the managed replay runs the same
   probe-free driver.  The record interpreter (with its per-call
   directive dict probes) is kept as
   ``ReplayConfig(kernel="reference")``.
2. **Collective expansion** (:mod:`repro.sim.collectives`) — a
   collective's point-to-point schedule is a pure function of
   ``(kind, rank, nranks, size, root)``; it is memoised once per shape
   with *relative* tags and rebased per instance
   (``base_tag_for(instance)``), so a collective occurring thousands of
   times in a trace expands exactly once.  Relative tags are validated
   against ``COLLECTIVE_TAG_STRIDE`` so rebased instances never collide.
3. **Matching + protocol** (:mod:`repro.sim.mpi`) — posted/unexpected
   queues with eager and rendezvous protocols, fully **processless**:
   eager isends complete as plain float timestamps, irecvs probe the
   matching layer at call time, rendezvous sends run as signal-chained
   continuations instead of helper processes (zero spawns — asserted),
   and WAIT/WAITALL drains a slice of nonblocking ops with at most one
   absolute-time sleep.  Envelopes and the per-operation completion
   :class:`~repro.sim.engine.Signal` objects are recycled through
   free-lists once the matching layer has fully consumed them, so
   steady-state replay allocates no per-message objects.
4. **The fabric** (:mod:`repro.network.fabric`) — routes are *static
   per (src, dst) pair* (an IB subnet manager programs forwarding tables
   ahead of traffic): a seeded, order-independent
   :class:`~repro.network.routing.RouteTable` compiles each pair once,
   the fabric flattens it into per-pair ``(link, channel, switch)`` hop
   tables, and ``Fabric.precompile_pairs`` builds them ahead of traffic
   from the compiled trace's ``comm_pairs()``.  ``Fabric.transfer`` /
   ``transfer_hot`` walk that flat table; the per-message route walk is
   kept as ``Fabric.transfer_reference``
   (``ReplayConfig(kernel="reference")``) and property-tested bit-for-bit
   identical.  Channel busy intervals append to flat start/end arrays;
   coalescing and utilisation/energy aggregation are deferred to query
   time.
5. **The DES engine** (:mod:`repro.sim.engine`) — selectable event
   queue (``ReplayConfig(scheduler=...)``): a calendar queue by
   default, heapq kept as the reference, both honouring the same
   ``(time, insertion-order)`` determinism contract.  Plain-tuple
   entries, no per-event closures, pooled signals, and synchronous
   resume of pre-registered signal waiters.

Drivers reuse fabrics and compiled programs across replays
(``fabric_for`` / ``compile_trace`` + the ``fabric=`` / ``programs=``
parameters of the replay entry points): construction, route compilation
and program lowering are run-invariant, and :meth:`Fabric.reset` clears
the rest, with back-to-back-equals-fresh covered by regression tests.
Every (kernel, scheduler) combination is pinned bit-for-bit to the
``("reference", "heap")`` oracle by the differential harness
(``tests/sim/test_differential_kernels.py``).
"""

from ..network.faults import FabricPartitioned, FaultSummary
from .dimemas import (
    KERNELS,
    ReplayConfig,
    fabric_for,
    replay_baseline,
    replay_managed,
)
from .engine import SCHEDULERS, AllOf, Delay, Engine, Signal, SimulationError
from .mpi import MPIWorld, RankDirective
from .program import CompiledTrace, RankProgram, compile_trace
from .results import BaselineResult, ManagedResult
from .venus import (
    LinkUsage,
    fabric_usage,
    host_link_idle_distribution,
    link_usage,
)

__all__ = [
    "KERNELS",
    "SCHEDULERS",
    "FabricPartitioned",
    "FaultSummary",
    "ReplayConfig",
    "fabric_for",
    "replay_baseline",
    "replay_managed",
    "CompiledTrace",
    "RankProgram",
    "compile_trace",
    "AllOf",
    "Delay",
    "Engine",
    "Signal",
    "SimulationError",
    "MPIWorld",
    "RankDirective",
    "BaselineResult",
    "ManagedResult",
    "LinkUsage",
    "fabric_usage",
    "host_link_idle_distribution",
    "link_usage",
]
