"""Simulator substrate: DES engine, MPI replay, collectives, replays.

The Dimemas+Venus co-simulation of the paper, in two layers:

* :mod:`repro.sim.engine` / :mod:`repro.sim.mpi` — discrete-event kernel
  and MPI semantics (matching, eager/rendezvous, collectives);
* :mod:`repro.sim.dimemas` — the trace replay drivers used by every
  experiment (baseline and managed runs).

Replay architecture (the fast kernel)
-------------------------------------

A replay pushes every traced MPI operation through four layers; each one
precomputes or pools whatever is invariant across the run so that the
per-message hot path touches only flat, already-compiled state:

1. **Collective expansion** (:mod:`repro.sim.collectives`) — a
   collective's point-to-point schedule is a pure function of
   ``(kind, rank, nranks, size, root)``; it is memoised once per shape
   with *relative* tags and rebased per instance
   (``base_tag_for(instance)``), so a collective occurring thousands of
   times in a trace expands exactly once.  Relative tags are validated
   against ``COLLECTIVE_TAG_STRIDE`` so rebased instances never collide.
2. **Matching + protocol** (:mod:`repro.sim.mpi`) — posted/unexpected
   queues with eager and rendezvous protocols.  Envelopes and the
   per-operation completion :class:`~repro.sim.engine.Signal` objects
   are recycled through free-lists once the matching layer has fully
   consumed them, so steady-state replay allocates no per-message
   objects.
3. **The fabric** (:mod:`repro.network.fabric`) — routes are *static
   per (src, dst) pair* (an IB subnet manager programs forwarding tables
   ahead of traffic): a seeded, order-independent
   :class:`~repro.network.routing.RouteTable` compiles each pair once,
   and the fabric flattens it into per-pair ``(link, channel, switch)``
   hop tables.  ``Fabric.transfer`` walks that flat table; the
   per-message route walk is kept as ``Fabric.transfer_reference``
   (``ReplayConfig(kernel="reference")``) and property-tested bit-for-bit
   identical.  Channel busy intervals append to flat start/end arrays;
   coalescing and utilisation/energy aggregation are deferred to query
   time.
4. **The DES engine** (:mod:`repro.sim.engine`) — plain-tuple heap
   entries, no per-event closures, pooled signals.

Drivers reuse fabrics across replays (``fabric_for`` + the ``fabric=``
parameter of the replay entry points): construction and route
compilation are run-invariant, and :meth:`Fabric.reset` clears the rest,
with back-to-back-equals-fresh covered by regression tests.
"""

from .dimemas import ReplayConfig, fabric_for, replay_baseline, replay_managed
from .engine import AllOf, Delay, Engine, Signal, SimulationError
from .mpi import MPIWorld, RankDirective
from .results import BaselineResult, ManagedResult
from .venus import (
    LinkUsage,
    fabric_usage,
    host_link_idle_distribution,
    link_usage,
)

__all__ = [
    "ReplayConfig",
    "fabric_for",
    "replay_baseline",
    "replay_managed",
    "AllOf",
    "Delay",
    "Engine",
    "Signal",
    "SimulationError",
    "MPIWorld",
    "RankDirective",
    "BaselineResult",
    "ManagedResult",
    "LinkUsage",
    "fabric_usage",
    "host_link_idle_distribution",
    "link_usage",
]
