"""Result containers for baseline and managed replays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..power.controller import PowerEventCounters
from ..power.model import PowerReport
from ..trace.events import MPIEvent, idle_gaps
from ..trace.intervals import IdleDistribution, distribution_from_gaps, merge_gap_streams


@dataclass(slots=True)
class BaselineResult:
    """Outcome of the power-unaware replay (links always on)."""

    trace_name: str
    nranks: int
    exec_time_us: float
    event_logs: list[list[MPIEvent]]
    messages_sent: int
    bytes_carried: int
    #: helper processes spawned by the MPI layer during the replay —
    #: 0 since the zero-spawn rendezvous/irecv refactor (the bench and
    #: regression tests assert on it)
    helper_spawns: int = 0
    #: :class:`repro.network.faults.FaultSummary` when fault injection
    #: was armed for this replay, else None
    faults: object | None = None

    def rank_gaps(self, rank: int) -> np.ndarray:
        return np.asarray(idle_gaps(self.event_logs[rank]), dtype=np.float64)

    def all_gaps(self) -> np.ndarray:
        return merge_gap_streams([idle_gaps(log) for log in self.event_logs])

    def idle_distribution(self) -> IdleDistribution:
        """Table I row for this run (aggregated over ranks)."""

        return distribution_from_gaps(self.all_gaps())

    @property
    def mean_mpi_calls_per_rank(self) -> float:
        if not self.event_logs:
            return 0.0
        return sum(len(l) for l in self.event_logs) / len(self.event_logs)


@dataclass(slots=True)
class ManagedResult:
    """Outcome of a replay with the power-saving mechanism active."""

    trace_name: str
    nranks: int
    exec_time_us: float
    baseline_exec_time_us: float
    power: PowerReport
    counters: list[PowerEventCounters]
    event_logs: list[list[MPIEvent]]
    displacement: float
    grouping_thresholds_us: list[float]
    #: per-rank PPA bookkeeping forwarded from the runtime pass
    runtime_stats: list = field(default_factory=list)
    #: per-rank HCA-link energy accounts (power-state timelines), for
    #: Paraver-style visualisation and fine-grained analysis
    accounts: list = field(default_factory=list)
    #: the fabric's topology spec string (``ReplayConfig.topology``)
    topology: str = "fitted"
    #: per-switch whole-switch savings rollup
    #: (:func:`repro.power.switchpower.fabric_switch_rollup`) — radix
    #: aware, so heterogeneous families aggregate correctly
    switch_savings: tuple = ()
    #: helper processes spawned by the MPI layer during the replay —
    #: 0 since the zero-spawn rendezvous/irecv refactor (the bench and
    #: regression tests assert on it)
    helper_spawns: int = 0
    #: :class:`repro.network.faults.FaultSummary` when fault injection
    #: was armed for this replay (wake-timeout counters folded in), else
    #: None
    faults: object | None = None
    #: :class:`repro.cluster.scheduler.JobAttribution` when this result
    #: is one job of a multi-job cluster replay (arrival/start/finish,
    #: placement, tenant, job-attributed link energy and the
    #: slowdown-vs-isolated reference), else None.  In that case
    #: ``exec_time_us`` is the job's in-cluster span and
    #: ``baseline_exec_time_us`` is its *isolated* managed span, so
    #: ``exec_time_increase_pct`` reads as slowdown-vs-isolated.
    cluster: object | None = None
    #: canonical power-policy spec this replay ran under
    #: (:meth:`repro.power.policies.PolicySpec.describe`)
    policy: str = "policy:hca=gate"
    #: per-link-class energy rollup
    #: (:class:`repro.power.policies.ClassSavings` rows, canonical class
    #: order) — one row per *managed* class, so the default spec yields
    #: a single hca row
    class_savings: tuple = ()

    @property
    def fleet_switch_savings_pct(self) -> float:
        """Radix-weighted whole-switch savings over the fabric."""

        from ..power.switchpower import rollup_fleet_savings_pct

        return rollup_fleet_savings_pct(self.switch_savings)

    @property
    def exec_time_increase_pct(self) -> float:
        """The Figures 7-9(b) metric."""

        if self.baseline_exec_time_us <= 0:
            return 0.0
        return 100.0 * (
            self.exec_time_us / self.baseline_exec_time_us - 1.0
        )

    @property
    def power_savings_pct(self) -> float:
        """The Figures 7-9(a) metric."""

        return self.power.mean_savings_pct

    def class_savings_for(self, link_class: str):
        """The :class:`ClassSavings` row of one link class, or None."""

        for row in self.class_savings:
            if row.link_class == link_class:
                return row
        return None

    @property
    def trunk_savings_pct(self) -> float:
        """Mean energy savings over managed trunk links (0 if unmanaged)."""

        row = self.class_savings_for("trunk")
        return row.savings_pct if row is not None else 0.0

    @property
    def total_shutdowns(self) -> int:
        return sum(c.shutdowns for c in self.counters)

    @property
    def total_mispredictions(self) -> int:
        return sum(
            c.emergency_reactivations + c.late_reactivations for c in self.counters
        )

    @property
    def total_penalty_us(self) -> float:
        return sum(c.total_penalty_us for c in self.counters)

    def summary_line(self) -> str:
        return (
            f"{self.trace_name:10s} P={self.nranks:<4d} "
            f"savings={self.power_savings_pct:6.2f}% "
            f"slowdown={self.exec_time_increase_pct:5.2f}% "
            f"shutdowns={self.total_shutdowns} "
            f"mispred={self.total_mispredictions}"
        )
