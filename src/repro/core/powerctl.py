"""Power-mode control — Algorithm 3 of the paper.

Once the PPA has declared a pattern, the runtime switches from the
pattern-prediction component to the power-mode-control component: each
incoming MPI call is checked against the predicted pattern *call by
call*; when the calls seen so far complete the predicted gram (same size
and content), the turn-off-lanes instruction is issued right at that
call's exit, with the hardware timer programmed per Algorithm 3::

    safetyLimit      = idleTime * displacementFactor + T_react
    predictIdleTime  = idleTime - safetyLimit
    WRPS_method(predictIdleTime)

``idleTime`` is the running (EWMA) estimate of the idle boundary that
follows this gram in the pattern cycle; the displacement factor trades
power for safety margin (Fig. 4): the lanes come back up a fraction of
the idle interval *early*, so ordinary jitter does not stall the next
communication.

Both misprediction types of the paper surface here:

* **pattern misprediction** — the observed call deviates from the
  predicted gram (wrong call id, gram ends early, or gram runs past the
  predicted size).  The monitor reports a mismatch; the runtime flips
  back to the PPA.  Any already-issued shutdown is paid for naturally in
  the replay (the next transfer finds the link below full width).
* **timing misprediction** — the pattern holds but the real idle interval
  is shorter than predicted minus the safety limit; the replay charges
  the residual reactivation time to the blocked transfer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .patterns import PatternRecord


class GramCheck(enum.Enum):
    """Outcome of feeding one call to the monitor."""

    MATCH_PARTIAL = "partial"       # call matches; gram not yet complete
    MATCH_COMPLETE = "complete"     # call matches and completes the gram
    MISMATCH = "mismatch"           # pattern misprediction


@dataclass(frozen=True, slots=True)
class ShutdownPlan:
    """A turn-off instruction with its programmed timer."""

    timer_us: float
    predicted_idle_us: float
    boundary: int


def shutdown_timer_us(
    idle_us: float,
    *,
    displacement: float,
    gt_us: float,
    t_react_us: float,
    t_deact_us: float,
) -> float | None:
    """Algorithm 3's guard + timer arithmetic, the single source of truth.

    Returns the programmed timer, or ``None`` when the idle estimate is
    too short to pay the toggle (``<= 2*T_react``), below the
    useless-region cutoff (``< GT``), or leaves no room after the safety
    margin (``timer <= T_deact``).  Used by the live monitor and by the
    deferred rebind path, so the two can never drift; the vectorised
    sweep filter (:func:`repro.core.fastscan.count_shutdowns`) applies
    the same arithmetic elementwise and is property-tested against this
    function.
    """

    if idle_us <= 2.0 * t_react_us or idle_us < gt_us:
        return None
    safety = idle_us * displacement + t_react_us
    timer = idle_us - safety
    if timer <= t_deact_us:
        return None
    return timer


@dataclass(frozen=True, slots=True)
class PowerControlConfig:
    displacement: float
    gt_us: float
    t_react_us: float
    t_deact_us: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.displacement < 1.0:
            raise ValueError("displacement factor must be in [0, 1)")
        if self.gt_us < 2.0 * self.t_react_us:
            raise ValueError("GT below the 2*T_react break-even")


class PowerModeMonitor:
    """Tracks the predicted pattern cycle for one MPI process."""

    def __init__(self, record: PatternRecord, config: PowerControlConfig) -> None:
        if record.size < 1:
            raise ValueError("empty pattern")
        self.record = record
        self.config = config
        self.cycle_pos = 0        # index of the gram we are matching
        self.pos_in_gram = 0      # calls of that gram seen so far
        self.grams_matched = 0
        self.calls_matched = 0
        self.shutdowns_planned = 0
        #: set after a gram completes: the next call must arrive across a
        #: >= GT gap; a continuation means the real gram ran longer than
        #: the predicted one (pattern misprediction).
        self._expect_boundary = False

    # ---------------------------------------------------------------- feeding

    @property
    def expected_signature(self) -> tuple[int, ...]:
        return self.record.key[self.cycle_pos]

    def begin_new_gram(self, observed_gap_us: float) -> bool:
        """The stream opened a new gram (gap >= GT).

        Returns ``False`` (pattern misprediction) if the previous gram
        had not been completed yet.  On success, the observed gap updates
        the EWMA of the boundary that just elapsed.
        """

        if self.pos_in_gram != 0:
            # previous gram ended before the predicted number of calls
            return False
        self._expect_boundary = False
        boundary = (self.cycle_pos - 1) % self.record.size
        self.record.observe_gap(boundary, observed_gap_us)
        return True

    def feed_call(self, call_id: int) -> GramCheck:
        """Check one MPI call against the expected gram."""

        if self._expect_boundary:
            # the real gram ran past the predicted size (no >= GT gap
            # appeared where the pattern requires one)
            return GramCheck.MISMATCH
        sig = self.expected_signature
        if self.pos_in_gram >= len(sig) or sig[self.pos_in_gram] != call_id:
            return GramCheck.MISMATCH
        self.pos_in_gram += 1
        self.calls_matched += 1
        if self.pos_in_gram == len(sig):
            self.grams_matched += 1
            self.pos_in_gram = 0
            self._expect_boundary = True
            self.cycle_pos = (self.cycle_pos + 1) % self.record.size
            return GramCheck.MATCH_COMPLETE
        return GramCheck.MATCH_PARTIAL

    # --------------------------------------------------------------- planning

    def pending_idle_us(self) -> float | None:
        """The EWMA idle estimate for the boundary that follows the gram
        that just completed — the displacement-*independent* input of
        Algorithm 3.  Used by the deferred planning mode, which records
        the estimate and applies the displacement/threshold arithmetic
        later (``RankPlan.rebind_displacement``)."""

        boundary = (self.cycle_pos - 1) % self.record.size
        return self.record.predicted_gap_us(boundary)

    def plan_shutdown(self) -> ShutdownPlan | None:
        """Algorithm 3's body, for the boundary that follows the gram that
        just completed (call after :meth:`feed_call` returned
        ``MATCH_COMPLETE``; ``cycle_pos`` has already advanced)."""

        boundary = (self.cycle_pos - 1) % self.record.size
        idle = self.record.predicted_gap_us(boundary)
        if idle is None:
            return None
        cfg = self.config
        timer = shutdown_timer_us(
            idle,
            displacement=cfg.displacement,
            gt_us=cfg.gt_us,
            t_react_us=cfg.t_react_us,
            t_deact_us=cfg.t_deact_us,
        )
        if timer is None:
            return None
        self.shutdowns_planned += 1
        return ShutdownPlan(timer_us=timer, predicted_idle_us=idle, boundary=boundary)
