"""The Pattern Prediction Algorithm — Algorithm 2 of the paper.

The PPA watches the growing array of grams and finds the smallest
contiguous pattern that repeats back-to-back, declaring it *predictable*
after three consecutive appearances (or after a single reappearance of a
pattern that was already detected earlier — the paper's fast re-arm).

Operational specification (behaviour-equivalent restatement of the
paper's Algorithm 2, validated against the Fig. 3 walkthrough — see
``tests/core/test_ppa_paper_example.py``):

* A scan pointer ``p`` slides over the gram array with the current
  window size ``s`` (initially 2, a bi-gram).
* **New window** → insert into the pattern list, advance ``p`` by 1.
* **Match with the immediately preceding occurrence** (position
  ``p - s``) → a consecutive repeat: the window becomes the locked
  candidate, ``p`` strides by ``s``, and once the trailing run of
  adjacent occurrences reaches 2 pairs (three back-to-back appearances)
  the pattern is **declared** and prediction begins at gram ``p + s``.
* **Match with an older occurrence** ``q`` → growth: while the extension
  gram matches (the paper's ``checkO`` — the previous occurrence of the
  prefix can be constructed into the same larger n-gram), enlarge the
  window one gram at a time, transferring frequency from the prefix to
  the extension.  Growth is bounded by ``p - q`` (beyond that the two
  occurrences overlap into adjacency) and by ``maxPatternSize`` once one
  pattern has been detected (the paper's natural-iteration lock, line 32
  of Algorithm 2).
* **Failed growth** → reset to bi-gram scanning at ``p + 1`` (Algorithm 2
  lines 37-40).
* **Fast re-arm**: any window whose pattern-list record is already
  ``detected`` re-declares prediction immediately.

Positions recorded for a grown pattern start at the position where the
growth happened (the historical anchor only contributes frequency, not a
position) — this is what makes the declaration land on MPI event #21 in
the paper's Fig. 3, with prediction starting at gram 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import CONSECUTIVE_REPEATS_TO_PREDICT, MIN_PATTERN_SIZE
from .grams import Gram
from .patterns import PatternKey, PatternList, PatternRecord, pattern_key


@dataclass(frozen=True, slots=True)
class PPAConfig:
    """Tunables of the prediction algorithm (paper defaults)."""

    consecutive_to_predict: int = CONSECUTIVE_REPEATS_TO_PREDICT
    #: hard cap on pattern growth before any detection has locked
    #: maxPatternSize; protects against pathological streams.
    pattern_size_cap: int = 64
    gap_alpha: float = 0.5


@dataclass(frozen=True, slots=True)
class PredictionDeclaration:
    """Emitted when the PPA declares a pattern predictable."""

    record: PatternRecord
    anchor_gram_index: int   # prediction applies from this gram onward
    fast_rearm: bool


class PPA:
    """Per-process pattern prediction (each MPI process runs its own)."""

    def __init__(self, config: PPAConfig | None = None) -> None:
        self.config = config or PPAConfig()
        self.grams: list[Gram] = []
        self.pattern_list = PatternList(gap_alpha=self.config.gap_alpha)
        self.scan_pos = 0
        self.pattern_size = MIN_PATTERN_SIZE
        self.max_pattern_size: int | None = None
        self.candidate: PatternKey | None = None
        self._growing = False
        self._grow_anchor = 0       # q: older occurrence used by checkO
        self._grow_pos = 0          # p: position being grown
        self.compare_ops = 0        # gram comparisons (overhead model)
        self.declarations = 0

    # ------------------------------------------------------------------ API

    @property
    def operations(self) -> int:
        """Total pattern-table + comparison operations so far."""

        return self.pattern_list.operations + self.compare_ops

    def add_gram(self, gram: Gram) -> PredictionDeclaration | None:
        """Feed one closed gram; scan; maybe declare a prediction."""

        self.grams.append(gram)
        return self._scan()

    def append_only(self, gram: Gram) -> None:
        """Record a gram without scanning (PPA dormant during prediction)."""

        self.grams.append(gram)

    def relaunch(self, from_gram_index: int) -> None:
        """Restart scanning after a misprediction (pattern list kept)."""

        self.scan_pos = from_gram_index
        self.pattern_size = MIN_PATTERN_SIZE
        self.candidate = None
        self._growing = False

    # ------------------------------------------------------------------ scan

    def _window(self, p: int, s: int) -> PatternKey:
        return pattern_key(self.grams[p : p + s])

    def _gap(self, i: int) -> float:
        return max(0.0, self.grams[i + 1].start_us - self.grams[i].end_us)

    def _size_limit(self) -> int:
        cap = self.config.pattern_size_cap
        if self.max_pattern_size is not None:
            cap = min(cap, self.max_pattern_size)
        return cap

    def _scan(self) -> PredictionDeclaration | None:
        while True:
            if self._growing:
                result = self._grow_step()
            else:
                result = self._scan_step()
            if result is _WAIT:
                return None
            if isinstance(result, PredictionDeclaration):
                return result
            # else: made progress, loop again

    def _scan_step(self):
        p, s = self.scan_pos, self.pattern_size
        if p + s > len(self.grams):
            return _WAIT
        key = self._window(p, s)

        if self.candidate is not None and key != self.candidate:
            # the locked candidate broke: fall back to bi-gram scanning
            # at the same position
            self.candidate = None
            self.pattern_size = MIN_PATTERN_SIZE
            return _PROGRESS

        rec, was_new = self.pattern_list.update(key, p)
        if was_new:
            self.scan_pos = p + 1
            return _PROGRESS

        if rec.detected:
            return self._declare(rec, p + s, fast_rearm=True)

        prev = rec.positions[-2] if len(rec.positions) >= 2 else None
        if prev is not None and p - prev == s:
            # consecutive repeat
            self.candidate = key
            self._observe_occurrence_gaps(rec, p)
            self.scan_pos = p + s
            if rec.consecutive_pairs() >= self.config.consecutive_to_predict:
                return self._declare(rec, p + s, fast_rearm=False)
            return _PROGRESS

        if prev is not None and self.candidate is None and s == MIN_PATTERN_SIZE:
            # older occurrence: try to grow the pattern (checkO path)
            self._growing = True
            self._grow_anchor = prev
            self._grow_pos = p
            return _PROGRESS

        # match that can neither count as consecutive nor grow: move on
        self.scan_pos = p + 1
        return _PROGRESS

    def _grow_step(self):
        p, q, s = self._grow_pos, self._grow_anchor, self.pattern_size
        limit = min(p - q, self._size_limit())
        if s >= limit:
            return self._finish_growth(p, s)
        if p + s >= len(self.grams):
            return _WAIT
        self.compare_ops += 1
        if self.grams[q + s].signature != self.grams[p + s].signature:
            # failed extension: reset to bi-gram scanning past p
            # (Algorithm 2 lines 37-40)
            self._growing = False
            self.candidate = None
            self.pattern_size = MIN_PATTERN_SIZE
            self.scan_pos = p + 1
            return _PROGRESS
        # extend: transfer frequency from the prefix to the larger n-gram
        prefix_key = self._window(p, s)
        new_size = s + 1
        key = self._window(p, new_size)
        rec, _was_new = self.pattern_list.update(key, p)
        self.pattern_list.bump_frequency(key, +1)
        self.pattern_list.bump_frequency(prefix_key, -1)
        self.pattern_size = new_size
        if rec.detected:
            self._growing = False
            return self._declare(rec, p + new_size, fast_rearm=True)
        return _PROGRESS

    def _finish_growth(self, p: int, s: int):
        """Growth exhausted: lock the grown window as the candidate."""

        self._growing = False
        self.candidate = self._window(p, s)
        rec = self.pattern_list.get(self.candidate)
        assert rec is not None
        self._observe_occurrence_gaps(rec, p)
        self.scan_pos = p + s
        if rec.consecutive_pairs() >= self.config.consecutive_to_predict:
            return self._declare(rec, p + s, fast_rearm=False)
        return _PROGRESS

    # ------------------------------------------------------------ declaration

    def _observe_occurrence_gaps(self, rec: PatternRecord, pos: int) -> None:
        """Feed the inter-gram gaps of the occurrence at ``pos`` into the
        pattern's boundary estimators (wrap gap included when available)."""

        s = rec.size
        for j in range(s):
            i = pos + j
            if i + 1 < len(self.grams):
                rec.observe_gap(j, self._gap(i))

    def _declare(
        self, rec: PatternRecord, anchor: int, fast_rearm: bool
    ) -> PredictionDeclaration:
        rec.detected = True
        if self.max_pattern_size is None:
            # lock the natural iteration length (Algorithm 2 line 32)
            self.max_pattern_size = rec.size
        self.declarations += 1
        return PredictionDeclaration(
            record=rec, anchor_gram_index=anchor, fast_rearm=fast_rearm
        )


class _Token:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


_WAIT = _Token("WAIT")
_PROGRESS = _Token("PROGRESS")
