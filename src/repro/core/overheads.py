"""Instrumentation overhead model (Section IV-D, Table IV).

The paper measures, with ``gettimeofday``, two software costs of running
the mechanism inside the PMPI layer:

* **interception** — intercepting an MPI call and reading the clock:
  ~1 us, paid on *every* call;
* **PPA work** — pattern-table operations when the prediction algorithm
  actually runs (only while learning; the PPA is disabled during the
  prediction phase): 7-26 us on the affected calls, averaging 16.5 us,
  but those calls are only ~2.1 % of all calls, so the amortised cost is
  ~1.3 us/call.

We charge interception as a fixed per-call cost and PPA work
proportionally to the number of pattern-table/compare operations the
algorithm performed while handling that call, with a per-operation cost
calibrated so the per-invocation figure lands in the paper's band.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import INTERCEPT_OVERHEAD_US


@dataclass(frozen=True, slots=True)
class OverheadModel:
    """Software costs of the PMPI instrumentation."""

    intercept_us: float = INTERCEPT_OVERHEAD_US
    #: cost of one hash-table operation (lookup/insert/remove) or gram
    #: comparison inside the PPA; uthash-style C tables run in the
    #: low-microsecond range per operation on the paper's hosts.
    per_op_us: float = 2.5

    def __post_init__(self) -> None:
        if self.intercept_us < 0 or self.per_op_us < 0:
            raise ValueError("overhead costs must be non-negative")

    def ppa_cost_us(self, operations: int) -> float:
        return operations * self.per_op_us


@dataclass(frozen=True, slots=True)
class OverheadReport:
    """One Table IV row, computed from a rank's runtime statistics."""

    ppa_call_fraction_pct: float    # "MPI calls when PPA is invoked"
    per_invoked_call_us: float      # "overhead per MPI call when PPA invoked"
    per_all_calls_us: float         # "overhead per all MPI calls"
    total_calls: int
    total_overhead_us: float

    @classmethod
    def from_counts(
        cls,
        total_calls: int,
        invoked_calls: int,
        ppa_overhead_us: float,
        intercept_us: float = INTERCEPT_OVERHEAD_US,
    ) -> "OverheadReport":
        if total_calls <= 0:
            return cls(0.0, 0.0, 0.0, 0, 0.0)
        total = ppa_overhead_us + intercept_us * total_calls
        return cls(
            ppa_call_fraction_pct=100.0 * invoked_calls / total_calls,
            per_invoked_call_us=(
                ppa_overhead_us / invoked_calls if invoked_calls else 0.0
            ),
            per_all_calls_us=total / total_calls,
            total_calls=total_calls,
            total_overhead_us=total,
        )
