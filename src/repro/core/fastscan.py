"""Vectorised planning layer for the GT sweep (single-pass candidates).

The seed implementation re-ran the full PMPI software side (gram
formation + PPA + monitor) from scratch for every GT candidate — ~40
event-level passes per rank for one Fig. 10 curve.  Two observations
make the sweep ~one pass instead:

1. **Gram boundaries only change when GT crosses an observed gap.**
   Each rank's inter-call gap array is precomputed once
   (:class:`RankScan`, numpy); a single ``searchsorted`` over the sorted
   union of all gaps buckets every candidate into a *boundary group*
   (:func:`group_candidates`).  Candidates in one group produce
   identical gram arrays on every rank, and — because the numeric GT
   value otherwise only enters Algorithm 3's shutdown thresholds, which
   never feed back into the matching state — identical runtime
   trajectories.  One pass per group serves all its candidates.

2. **The runtime is gram-granular.**  Learning-mode work happens only
   when a gram closes, and in prediction mode a gram either matches the
   expected signature or fails at a position computable from the two
   signatures.  :func:`scan_rank` therefore replays the mechanism over
   the numpy-split gram array (reusing the real :class:`~repro.core.ppa.
   PPA` so pattern-list state is exact) instead of feeding events one at
   a time.

Per-candidate ``shutdowns_planned`` is recovered from the recorded idle
estimates with the exact guard arithmetic of ``plan_shutdown`` — the
sweep output is bit-for-bit equal to the per-candidate slow path (see
``tests/core/test_fastscan.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constants import MIN_GROUPING_THRESHOLD_US
from ..trace.events import MPIEvent
from .grams import Gram
from .overheads import OverheadModel
from .ppa import PPA, PPAConfig
from .runtime import RuntimeStats

# outcomes of matching one observed gram against the predicted cycle
_COMPLETE = 0   # observed == expected; cycle advances
_PARTIAL = 1    # observed is a proper prefix; mismatch surfaces at the
                # next gram boundary (or never, at end of stream)
_MISMATCH = 2   # diverged before completing the expected gram
_OVERRUN = 3    # completed the expected gram, then kept going


@dataclass(frozen=True)
class RankScan:
    """One rank's event stream, pre-lowered to numpy arrays (built once
    per sweep, shared by every candidate group)."""

    calls: np.ndarray     # int64 MPI call ids
    enter_us: np.ndarray  # float64 call-entry times
    exit_us: np.ndarray   # float64 call-exit times
    gaps_us: np.ndarray   # float64 raw inter-call gaps (len n-1)

    @classmethod
    def from_events(cls, events: Sequence[MPIEvent]) -> "RankScan":
        n = len(events)
        calls = np.fromiter((int(e.call) for e in events), np.int64, count=n)
        enter = np.fromiter((e.enter_us for e in events), np.float64, count=n)
        exit_ = np.fromiter((e.exit_us for e in events), np.float64, count=n)
        gaps = enter[1:] - exit_[:-1] if n > 1 else np.empty(0, np.float64)
        return cls(calls=calls, enter_us=enter, exit_us=exit_, gaps_us=gaps)

    @property
    def n_events(self) -> int:
        return len(self.calls)

    def split_grams(self, gt_us: float) -> tuple[list[Gram], list[float]]:
        """Algorithm 1 as one vector operation: grams + boundary gaps."""

        n = self.n_events
        if n == 0:
            return [], []
        cut = np.nonzero(self.gaps_us >= gt_us)[0]
        starts = [0] + (cut + 1).tolist()
        ends = cut.tolist() + [n - 1]
        calls = self.calls.tolist()
        enter = self.enter_us.tolist()
        exit_ = self.exit_us.tolist()
        grams = [
            Gram(
                signature=tuple(calls[s : e + 1]),
                start_us=enter[s],
                end_us=exit_[e],
                first_call_index=s,
                last_call_index=e,
            )
            for s, e in zip(starts, ends)
        ]
        return grams, self.gaps_us[cut].tolist()


def group_candidates(
    scans: Sequence[RankScan], candidates: Sequence[float]
) -> list[tuple[float, list[float]]]:
    """Bucket GT candidates into boundary-equivalence groups.

    Derived in a single pass over the sorted union of every rank's gap
    array: two candidates land in the same group iff no observed gap
    lies in ``[c1, c2)``, i.e. they cut identical gram boundaries on
    every rank.  Returns ``(representative, members)`` pairs in first-
    seen order; the representative is the group's smallest candidate.
    """

    for gt in candidates:
        if gt < MIN_GROUPING_THRESHOLD_US:
            raise ValueError(
                f"GT must be at least 2*T_react = {MIN_GROUPING_THRESHOLD_US} us, "
                f"got {gt}"
            )
    arrays = [s.gaps_us for s in scans if len(s.gaps_us)]
    all_gaps = (
        np.unique(np.concatenate(arrays)) if arrays else np.empty(0, np.float64)
    )
    keys = np.searchsorted(all_gaps, np.asarray(candidates, np.float64), "left")
    groups: dict[int, list[float]] = {}
    for gt, key in zip(candidates, keys.tolist()):
        groups.setdefault(key, []).append(gt)
    return [(min(members), members) for members in groups.values()]


@dataclass(slots=True)
class RankScanOutcome:
    """One rank's trajectory at one boundary group.

    ``stats`` is exactly the slow path's :class:`RuntimeStats` except
    ``shutdowns_planned`` (left 0); ``idles_us`` holds the EWMA idle
    estimate of every consulted boundary, from which the per-candidate
    shutdown count is recovered.
    """

    stats: RuntimeStats
    idles_us: list[float] = field(default_factory=list)


def scan_rank(
    grams: Sequence[Gram],
    boundary_gaps_us: Sequence[float],
    n_events: int,
    *,
    ppa: PPAConfig | None = None,
    overheads: OverheadModel | None = None,
    charge_overheads: bool = False,
) -> RankScanOutcome:
    """Replay the mechanism's software side at gram granularity.

    Semantically identical to ``PMPIRuntime.process_stream`` over the
    events that produced ``grams`` (a gram closes when the first call of
    its successor arrives; the trailing gram closes at end of stream and
    is never scanned), but the per-event work collapses to one tuple
    comparison per predicted gram.
    """

    cfg = ppa or PPAConfig()
    model = overheads or OverheadModel()
    stats = RuntimeStats()
    stats.planning_passes = 1
    stats.total_calls = n_events
    stats.grams_total = len(grams)
    if charge_overheads:
        stats.intercept_overhead_us = model.intercept_us * n_events
    outcome = RankScanOutcome(stats=stats)
    idles = outcome.idles_us

    engine = PPA(cfg)
    record = None          # active PatternRecord while predicting
    cycle_pos = 0
    partial_pending = False  # previous gram matched a proper prefix
    n = len(grams)

    for i in range(n):
        gram = grams[i]
        if record is not None:
            # ---- prediction mode: gram i-1 closed by gram i's first call
            engine.append_only(grams[i - 1])
            if partial_pending:
                # previous gram ended before the predicted size: the
                # boundary itself is the pattern misprediction
                stats.pattern_mispredictions += 1
                record = None
                partial_pending = False
                engine.relaunch(len(engine.grams))
                continue
            record.observe_gap(
                (cycle_pos - 1) % record.size, boundary_gaps_us[i - 1]
            )
            result, cycle_pos = _match_gram(
                gram.signature, 0, record, cycle_pos, stats, idles
            )
            if result == _PARTIAL:
                partial_pending = True
            elif result != _COMPLETE:  # _MISMATCH or _OVERRUN, mid-gram
                stats.pattern_mispredictions += 1
                record = None
                engine.relaunch(len(engine.grams))
            continue

        # ---- learning mode: gram i's first call closes gram i-1
        if i == 0:
            continue
        ops_before = engine.operations
        declaration = engine.add_gram(grams[i - 1])
        ops = engine.operations - ops_before
        if ops > 0:
            stats.ppa_invoked_calls += 1
            stats.ppa_operations += ops
            if charge_overheads:
                stats.ppa_overhead_us += model.ppa_cost_us(ops)
        if declaration is None:
            continue

        # ---- activation: replay the open gram's only call (gram i's
        # first) into the fresh monitor; abandon on mismatch
        rec = declaration.record
        first_sig = rec.key[0]
        if first_sig[0] != gram.signature[0]:
            continue  # stay learning; rec.detected stays set
        stats.declarations += 1
        if declaration.fast_rearm:
            stats.fast_rearms += 1
        record = rec
        cycle_pos = 0
        if len(first_sig) == 1:
            # the replayed call completed the gram inside activation:
            # no predicted-call credit, no shutdown consult (the slow
            # path's _activate bypasses _predict_step)
            cycle_pos = 1 % rec.size
            if len(gram.signature) > 1:
                # the real gram runs past the predicted size
                stats.pattern_mispredictions += 1
                record = None
                engine.relaunch(len(engine.grams))
        else:
            result, cycle_pos = _match_gram(
                gram.signature, 1, record, cycle_pos, stats, idles
            )
            if result == _PARTIAL:
                partial_pending = True
            elif result != _COMPLETE:
                stats.pattern_mispredictions += 1
                record = None
                engine.relaunch(len(engine.grams))

    return outcome


def _match_gram(observed, offset, record, cycle_pos, stats, idles):
    """Match one observed gram signature against the predicted cycle.

    ``offset`` calls were already fed during activation.  Returns the
    outcome token and the updated cycle position, crediting stats and
    recording the consulted idle estimate exactly where the event-level
    monitor would.
    """

    expected = record.key[cycle_pos]
    if offset == 0 and observed == expected:  # hot path: one comparison
        complete = True
    else:
        n_obs, n_exp = len(observed), len(expected)
        limit = min(n_obs, n_exp)
        j = offset
        while j < limit and observed[j] == expected[j]:
            j += 1
        if j < limit:
            return _MISMATCH, cycle_pos
        if n_obs < n_exp:
            return _PARTIAL, cycle_pos
        complete = n_obs == n_exp
    # the expected gram completed (possibly mid-observed-gram)
    stats.grams_matched += 1
    stats.predicted_calls += len(expected)
    idle = record.predicted_gap_us(cycle_pos)
    if idle is not None:
        idles.append(idle)
    new_cycle = (cycle_pos + 1) % record.size
    if complete:
        return _COMPLETE, new_cycle
    return _OVERRUN, new_cycle


def _scan_rank_worker(args) -> list[RankScanOutcome]:
    """Picklable worker body: one rank scanned at every requested GT.

    Batching all GT representatives into one task means a parallel sweep
    ships each rank's arrays to a worker exactly once and uses a single
    process pool, instead of paying pool startup + pickling per
    boundary group.
    """

    scan, gt_values, ppa_cfg, charge = args
    outcomes: list[RankScanOutcome] = []
    for gt_us in gt_values:
        grams, bgaps = scan.split_grams(gt_us)
        outcomes.append(
            scan_rank(
                grams, bgaps, scan.n_events,
                ppa=ppa_cfg, charge_overheads=charge,
            )
        )
    return outcomes


def scan_ranks(
    scans: Sequence[RankScan],
    gt_values: Sequence[float],
    *,
    ppa: PPAConfig | None = None,
    charge_overheads: bool = False,
    workers: int = 1,
) -> list[list[RankScanOutcome]]:
    """Scan every rank at every GT value (optionally in parallel).

    Returns ``result[gt_index][rank_index]`` outcomes; ranks fan out
    over processes, each handling all GT values for its rank.
    """

    from ..concurrency import parallel_map

    cfg = ppa or PPAConfig()
    per_rank = parallel_map(
        _scan_rank_worker,
        [(scan, list(gt_values), cfg, charge_overheads) for scan in scans],
        workers,
    )
    return [
        [rank_outcomes[g] for rank_outcomes in per_rank]
        for g in range(len(gt_values))
    ]


def count_shutdowns(
    idles_us: np.ndarray,
    candidates: Sequence[float],
    *,
    displacement: float,
    t_react_us: float,
    t_deact_us: float,
) -> dict[float, int]:
    """Per-candidate ``shutdowns_planned`` from consulted idle estimates.

    The vectorised counterpart of :func:`repro.core.powerctl.
    shutdown_timer_us` (property-tested against it): a consult plans a
    shutdown iff ``idle > 2*t_react``, ``idle >= gt`` and
    ``idle - (idle*displacement + t_react) > t_deact``.  Only the middle
    guard depends on the candidate, so the GT-independent filter runs
    once and each candidate costs one ``searchsorted``.
    """

    if len(idles_us) == 0:
        return {gt: 0 for gt in candidates}
    timers = idles_us - (idles_us * displacement + t_react_us)
    eligible = np.sort(
        idles_us[(idles_us > 2.0 * t_react_us) & (timers > t_deact_us)]
    )
    total = len(eligible)
    return {
        gt: total - int(np.searchsorted(eligible, gt, "left"))
        for gt in candidates
    }
