"""The paper's primary contribution: PPA + power mode control + runtime.

* :mod:`repro.core.grams` — Algorithm 1, grouping MPI calls into grams;
* :mod:`repro.core.patterns` — pattern records and the pattern list;
* :mod:`repro.core.ppa` — Algorithm 2, n-gram pattern prediction;
* :mod:`repro.core.powerctl` — Algorithm 3, power mode control;
* :mod:`repro.core.runtime` — the PMPI interposition pipeline;
* :mod:`repro.core.gt_search` — grouping-threshold tuning (Section IV-C);
* :mod:`repro.core.fastscan` — vectorised single-pass GT sweep layer;
* :mod:`repro.core.overheads` — instrumentation cost model (Section IV-D).
"""

from .fastscan import RankScan, count_shutdowns, group_candidates, scan_rank
from .grams import Gram, GramBuilder, GramSignature, build_grams, gram_gaps_us
from .gt_search import (
    GT_TIE_TOLERANCE_PCT,
    GTEvaluation,
    GTSelection,
    default_gt_candidates,
    evaluate_gt,
    gt_sweep,
    select_gt,
    select_gt_detailed,
)
from .overheads import OverheadModel, OverheadReport
from .patterns import (
    GapEstimator,
    PatternKey,
    PatternList,
    PatternRecord,
    format_pattern,
    pattern_key,
)
from .powerctl import (
    GramCheck,
    PowerControlConfig,
    PowerModeMonitor,
    ShutdownPlan,
)
from .ppa import PPA, PPAConfig, PredictionDeclaration
from .runtime import (
    PMPIRuntime,
    RankPlan,
    RuntimeConfig,
    RuntimeStats,
    ShutdownCandidate,
    TracePlan,
    plan_trace_directives,
    plan_trace_directives_shared,
)

__all__ = [
    "Gram",
    "GramBuilder",
    "GramSignature",
    "build_grams",
    "gram_gaps_us",
    "RankScan",
    "count_shutdowns",
    "group_candidates",
    "scan_rank",
    "GT_TIE_TOLERANCE_PCT",
    "GTEvaluation",
    "GTSelection",
    "default_gt_candidates",
    "evaluate_gt",
    "gt_sweep",
    "select_gt",
    "select_gt_detailed",
    "OverheadModel",
    "OverheadReport",
    "GapEstimator",
    "PatternKey",
    "PatternList",
    "PatternRecord",
    "format_pattern",
    "pattern_key",
    "GramCheck",
    "PowerControlConfig",
    "PowerModeMonitor",
    "ShutdownPlan",
    "PPA",
    "PPAConfig",
    "PredictionDeclaration",
    "PMPIRuntime",
    "RankPlan",
    "RuntimeConfig",
    "RuntimeStats",
    "ShutdownCandidate",
    "TracePlan",
    "plan_trace_directives",
    "plan_trace_directives_shared",
]
