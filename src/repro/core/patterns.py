"""Pattern objects and the pattern list (the paper's uthash table).

A *pattern* is a sequence of grams.  The pattern list maps a pattern's
key — the tuple of gram signatures — to a :class:`PatternRecord` holding
its frequency, recorded positions in the gram array, the ``detected``
flag (set once the pattern has been declared predictable; enables the
paper's fast re-arm after a misprediction), and the timing statistics
used to program the reactivation timer.

Timing statistics: for a pattern of length ``s`` there are ``s`` idle
boundaries per cycle — the gap after gram ``j`` for ``j < s-1``, plus the
wrap gap from the cycle's last gram to the next cycle's first.  Each
boundary keeps an exponentially-weighted moving average, matching the
paper's "inter-communication intervals continue to be updated with the
new values allowing more accurate transition between power modes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .grams import Gram, GramSignature

PatternKey = tuple[GramSignature, ...]


def pattern_key(grams: Sequence[Gram | GramSignature]) -> PatternKey:
    """Normalise a window of grams (or raw signatures) into a dict key."""

    out = []
    for g in grams:
        out.append(g.signature if isinstance(g, Gram) else tuple(g))
    return tuple(out)


def format_pattern(key: PatternKey) -> str:
    """Human-readable form matching the paper's notation, e.g.
    ``41-41-41_10_10``."""

    return "_".join("-".join(str(c) for c in sig) for sig in key)


@dataclass(slots=True)
class GapEstimator:
    """EWMA of one idle boundary's duration."""

    alpha: float = 0.5
    value_us: float | None = None
    observations: int = 0

    def update(self, gap_us: float) -> None:
        if gap_us < 0:
            raise ValueError("negative gap")
        if self.value_us is None:
            self.value_us = gap_us
        else:
            self.value_us = self.alpha * gap_us + (1 - self.alpha) * self.value_us
        self.observations += 1

    @property
    def is_ready(self) -> bool:
        return self.value_us is not None


@dataclass(slots=True)
class PatternRecord:
    """One entry of the pattern list."""

    key: PatternKey
    frequency: int = 0
    positions: list[int] = field(default_factory=list)
    detected: bool = False
    gap_after: list[GapEstimator] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.gap_after:
            self.gap_after = [GapEstimator() for _ in self.key]

    @property
    def size(self) -> int:
        return len(self.key)

    @property
    def n_mpi_calls(self) -> int:
        return sum(len(sig) for sig in self.key)

    def record_occurrence(self, position: int) -> None:
        self.frequency += 1
        if not self.positions or self.positions[-1] != position:
            self.positions.append(position)

    def consecutive_pairs(self) -> int:
        """Adjacent-occurrence pairs among recorded positions.

        Two occurrences are *consecutive* when their positions differ by
        exactly the pattern size (back-to-back repeats in the gram array).
        Only the trailing run of adjacency counts — a gap in the
        repetition resets the run, per the paper's "appears three times
        consecutively".
        """

        run = 0
        for prev, cur in zip(self.positions, self.positions[1:]):
            if cur - prev == self.size:
                run += 1
            else:
                run = 0
        return run

    def observe_gap(self, boundary: int, gap_us: float) -> None:
        """Update the EWMA for the gap after gram ``boundary`` (0-based;
        the last boundary is the wrap to the next cycle)."""

        self.gap_after[boundary % self.size].update(gap_us)

    def predicted_gap_us(self, boundary: int) -> float | None:
        est = self.gap_after[boundary % self.size]
        return est.value_us


class PatternList:
    """Hash table of patterns (the uthash equivalent).

    Every mutating access increments :attr:`operations`; the Table IV
    overhead model charges PPA time proportionally to it.
    """

    def __init__(self, gap_alpha: float = 0.5) -> None:
        self._table: dict[PatternKey, PatternRecord] = {}
        self.gap_alpha = gap_alpha
        self.operations = 0

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: PatternKey) -> bool:
        return key in self._table

    def get(self, key: PatternKey) -> PatternRecord | None:
        self.operations += 1
        return self._table.get(key)

    def update(self, key: PatternKey, position: int) -> tuple[PatternRecord, bool]:
        """Record an occurrence; returns ``(record, was_new)``.

        Mirrors the paper's ``updatePL``: inserts the pattern on first
        sight, bumps frequency and appends the position otherwise.
        """

        self.operations += 1
        rec = self._table.get(key)
        was_new = rec is None
        if rec is None:
            rec = PatternRecord(key=key)
            for est in rec.gap_after:
                est.alpha = self.gap_alpha
            self._table[key] = rec
        rec.record_occurrence(position)
        return rec, was_new

    def bump_frequency(self, key: PatternKey, delta: int = 1) -> None:
        """Frequency-only adjustment (the paper's checkO transfers counts
        from the prefix n-gram to the extended one)."""

        self.operations += 1
        rec = self._table.get(key)
        if rec is not None:
            rec.frequency = max(0, rec.frequency + delta)

    def remove(self, key: PatternKey) -> None:
        self.operations += 1
        self._table.pop(key, None)

    def detected_patterns(self) -> list[PatternRecord]:
        return [r for r in self._table.values() if r.detected]

    def values(self) -> Iterable[PatternRecord]:
        return self._table.values()
