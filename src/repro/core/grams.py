"""Gram formation — Algorithm 1 of the paper.

A *gram* is a maximal group of consecutive MPI calls whose
inter-communication gaps are all below the grouping threshold (GT).
Gaps of at least GT separate grams; those are the candidate idle windows
where lanes can be shut down (GT >= 2*T_react guarantees the window is
worth the toggle cost).

:class:`GramBuilder` performs the grouping online: feed it timed MPI
events one at a time; whenever an event's gap to its predecessor reaches
GT the previous gram *closes* and is returned.  Call :meth:`flush` at the
end of the stream to close the trailing gram.

Example from the paper's Fig. 2 (ALYA): the event stream
``41-41-41 ... 10 ... 10`` (gaps within the Sendrecv triple below GT)
forms grams ``(41,41,41)``, ``(10,)``, ``(10,)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..constants import MIN_GROUPING_THRESHOLD_US
from ..trace.events import MPIEvent

#: A gram's identity is the ordered tuple of MPI call ids it contains.
GramSignature = tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Gram:
    """A closed gram with its timing.

    ``first_call_index``/``last_call_index`` are positions in the rank's
    MPI event stream (0-based), used to attach power directives to the
    right call in the managed replay.
    """

    signature: GramSignature
    start_us: float            # enter time of the first call
    end_us: float              # exit time of the last call
    first_call_index: int
    last_call_index: int

    @property
    def n_calls(self) -> int:
        return len(self.signature)

    @property
    def span_us(self) -> float:
        return self.end_us - self.start_us

    def __str__(self) -> str:
        return "-".join(str(c) for c in self.signature)


class GramBuilder:
    """Online implementation of Algorithm 1 (forming the array of grams)."""

    def __init__(self, grouping_threshold_us: float) -> None:
        if grouping_threshold_us < MIN_GROUPING_THRESHOLD_US:
            raise ValueError(
                f"GT must be at least 2*T_react = {MIN_GROUPING_THRESHOLD_US} us, "
                f"got {grouping_threshold_us}"
            )
        self.gt_us = grouping_threshold_us
        self._calls: list[int] = []
        self._start_us = 0.0
        self._end_us = 0.0
        self._first_index = 0
        self._next_index = 0
        self._last_exit_us: float | None = None

    @property
    def events_seen(self) -> int:
        return self._next_index

    @property
    def open_gram_size(self) -> int:
        return len(self._calls)

    @property
    def open_calls(self) -> tuple[int, ...]:
        """Call ids of the currently open (not yet closed) gram."""

        return tuple(self._calls)

    def feed(self, event: MPIEvent) -> Gram | None:
        """Consume one timed MPI event.

        Returns the gram that this event *closed* (i.e. the gap between
        the previous event's exit and this event's entry reached GT), or
        ``None`` if the event joined the currently-open gram.
        """

        index = self._next_index
        self._next_index += 1
        closed: Gram | None = None

        if self._last_exit_us is not None:
            gap = event.enter_us - self._last_exit_us
            if gap >= self.gt_us:
                closed = self._close(index)
        if not self._calls:
            self._start_us = event.enter_us
            self._first_index = index
        self._calls.append(int(event.call))
        self._end_us = event.exit_us
        self._last_exit_us = event.exit_us
        return closed

    def flush(self) -> Gram | None:
        """Close the trailing gram at end of stream (if any)."""

        if not self._calls:
            return None
        return self._close(self._next_index)

    def _close(self, _next_index: int) -> Gram:
        gram = Gram(
            signature=tuple(self._calls),
            start_us=self._start_us,
            end_us=self._end_us,
            first_call_index=self._first_index,
            last_call_index=self._first_index + len(self._calls) - 1,
        )
        self._calls = []
        return gram


def build_grams(
    events: Sequence[MPIEvent], grouping_threshold_us: float
) -> list[Gram]:
    """Batch helper: the full gram array of one rank's event stream."""

    builder = GramBuilder(grouping_threshold_us)
    grams: list[Gram] = []
    for ev in events:
        closed = builder.feed(ev)
        if closed is not None:
            grams.append(closed)
    tail = builder.flush()
    if tail is not None:
        grams.append(tail)
    return grams


def gram_gaps_us(grams: Sequence[Gram]) -> list[float]:
    """Idle gaps between consecutive grams (the shutdown windows)."""

    return [
        max(0.0, nxt.start_us - cur.end_us)
        for cur, nxt in zip(grams, grams[1:])
    ]
