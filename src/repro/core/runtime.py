"""The PMPI interposition runtime: PPA + power mode control per process.

This module glues the pieces exactly the way the paper's Figure 1 shows:
intercept every MPI call; while no prediction holds, run the pattern
prediction component (gram formation + PPA); once a pattern is declared,
switch to the power-mode-control component, which verifies each gram
against the prediction and issues turn-off instructions with programmed
timers; on a pattern misprediction, relaunch the PPA.

Following the paper's trace-driven methodology (Section IV-A), the
runtime consumes the *baseline* timed event stream of one rank and emits
:class:`~repro.sim.mpi.RankDirective` instrumentation — PMPI overheads
per call plus shutdown directives attached to the MPI call after which
the turn-off instruction executes.  The managed replay then applies the
directives, and the reactivation penalties of both misprediction types
emerge from the simulation itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..constants import T_REACT_US
from ..power.states import WRPSParams
from ..sim.mpi import RankDirective
from ..trace.events import MPIEvent
from .grams import GramBuilder
from .overheads import OverheadModel, OverheadReport
from .powerctl import GramCheck, PowerControlConfig, PowerModeMonitor, ShutdownPlan
from .ppa import PPA, PPAConfig, PredictionDeclaration


@dataclass(slots=True)
class RuntimeStats:
    """Per-rank bookkeeping the experiments aggregate."""

    total_calls: int = 0
    predicted_calls: int = 0
    grams_total: int = 0
    grams_matched: int = 0
    pattern_mispredictions: int = 0
    declarations: int = 0
    fast_rearms: int = 0
    shutdowns_planned: int = 0
    ppa_invoked_calls: int = 0
    ppa_operations: int = 0
    ppa_overhead_us: float = 0.0
    intercept_overhead_us: float = 0.0

    @property
    def hit_rate_pct(self) -> float:
        """The Table III "MPI call hit rate": correctly predicted calls."""

        if self.total_calls == 0:
            return 0.0
        return 100.0 * self.predicted_calls / self.total_calls

    def overhead_report(self, model: OverheadModel) -> OverheadReport:
        return OverheadReport.from_counts(
            total_calls=self.total_calls,
            invoked_calls=self.ppa_invoked_calls,
            ppa_overhead_us=self.ppa_overhead_us,
            intercept_us=model.intercept_us,
        )


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """Per-run configuration of the mechanism."""

    gt_us: float
    displacement: float = 0.01
    wrps: WRPSParams = field(default_factory=WRPSParams.paper)
    ppa: PPAConfig = field(default_factory=PPAConfig)
    overheads: OverheadModel = field(default_factory=OverheadModel)
    #: include PMPI overheads in the emitted directives (the paper does;
    #: disable for the oracle/no-overhead ablation)
    charge_overheads: bool = True


class PMPIRuntime:
    """The mechanism for one MPI process."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self.builder = GramBuilder(config.gt_us)
        self.ppa = PPA(config.ppa)
        self.monitor: PowerModeMonitor | None = None
        self.stats = RuntimeStats()
        self.directives: dict[int, RankDirective] = {}
        self._pcc = PowerControlConfig(
            displacement=config.displacement,
            gt_us=config.gt_us,
            t_react_us=config.wrps.t_react_us,
            t_deact_us=config.wrps.t_deact_us,
        )
        self._gram_count = 0
        self._last_exit_us: float | None = None

    # --------------------------------------------------------------- process

    @property
    def predicting(self) -> bool:
        return self.monitor is not None

    def process_stream(self, events: Sequence[MPIEvent]) -> dict[int, RankDirective]:
        """Run the mechanism over one rank's timed event stream."""

        for index, event in enumerate(events):
            self.on_event(index, event)
        self.finish()
        return self.directives

    def on_event(self, index: int, event: MPIEvent) -> None:
        """Handle one intercepted MPI call."""

        cfg = self.config
        stats = self.stats
        stats.total_calls += 1
        pre = cfg.overheads.intercept_us if cfg.charge_overheads else 0.0
        stats.intercept_overhead_us += pre
        post = 0.0
        shutdown: ShutdownPlan | None = None

        gap: float | None = None
        if self._last_exit_us is not None:
            gap = event.enter_us - self._last_exit_us
        self._last_exit_us = event.exit_us

        # gram formation happens once per event regardless of mode; the
        # builder's >= GT rule is the same condition the monitor uses to
        # recognise a boundary, so the two stay consistent by design
        closed = self.builder.feed(event)
        if closed is not None:
            self._gram_count += 1
            stats.grams_total += 1

        if self.monitor is not None:
            if closed is not None:
                self.ppa.append_only(closed)
            shutdown = self._predict_step(event, gap)
        else:
            post = self._learn_step(closed)

        if pre > 0 or post > 0 or shutdown is not None:
            self._attach(index, pre=pre, post=post)
            if shutdown is not None:
                self._attach(index, timer=shutdown.timer_us)

    def finish(self) -> None:
        """Flush the trailing gram at end of stream (learning mode only)."""

        closed = self.builder.flush()
        if closed is not None:
            self._gram_count += 1
            self.stats.grams_total += 1
            if self.monitor is None:
                self.ppa.append_only(closed)

    # -------------------------------------------------------------- learning

    def _learn_step(self, closed) -> float:
        """Run the PPA on a freshly closed gram (if any).

        Returns the PPA overhead to charge on this call.
        """

        ops_before = self.ppa.operations
        declaration: PredictionDeclaration | None = None
        if closed is not None:
            declaration = self.ppa.add_gram(closed)
        ops = self.ppa.operations - ops_before
        overhead = 0.0
        if ops > 0:
            self.stats.ppa_invoked_calls += 1
            self.stats.ppa_operations += ops
            overhead = (
                self.config.overheads.ppa_cost_us(ops)
                if self.config.charge_overheads
                else 0.0
            )
            self.stats.ppa_overhead_us += overhead
        if declaration is not None:
            self._activate(declaration)
        return overhead

    def _activate(self, declaration: PredictionDeclaration) -> None:
        """Switch to the power-mode-control component.

        The anchor gram is the one currently open in the builder; any of
        its calls that already arrived are replayed into the monitor so
        the cycle position is exact.  If the open prefix already deviates
        from the pattern, the activation is abandoned (stay learning).
        """

        monitor = PowerModeMonitor(declaration.record, self._pcc)
        for call_id in self.builder.open_calls:
            if monitor.feed_call(call_id) is GramCheck.MISMATCH:
                return
        self.stats.declarations += 1
        if declaration.fast_rearm:
            self.stats.fast_rearms += 1
        self.monitor = monitor

    # ------------------------------------------------------------ predicting

    def _predict_step(
        self, event: MPIEvent, gap: float | None
    ) -> ShutdownPlan | None:
        """Power-mode-control component for one call."""

        monitor = self.monitor
        assert monitor is not None

        if gap is not None and gap >= self.config.gt_us:
            if not monitor.begin_new_gram(gap):
                self._mispredict()
                return None
        check = monitor.feed_call(int(event.call))
        if check is GramCheck.MISMATCH:
            self._mispredict()
            return None
        if check is GramCheck.MATCH_COMPLETE:
            self.stats.grams_matched += 1
            self.stats.predicted_calls += len(
                monitor.record.key[(monitor.cycle_pos - 1) % monitor.record.size]
            )
            plan = monitor.plan_shutdown()
            if plan is not None:
                self.stats.shutdowns_planned += 1
            return plan
        return None

    def _mispredict(self) -> None:
        """Pattern misprediction: relaunch the pattern prediction part."""

        self.stats.pattern_mispredictions += 1
        self.monitor = None
        # resume scanning with the grams that close from here on; history
        # stays in the pattern list so detected patterns can fast re-arm
        self.ppa.relaunch(len(self.ppa.grams))

    # ---------------------------------------------------------------- output

    def _attach(
        self,
        index: int,
        pre: float = 0.0,
        post: float = 0.0,
        timer: float | None = None,
    ) -> None:
        d = self.directives.get(index)
        if d is None:
            d = RankDirective()
            self.directives[index] = d
        d.pre_overhead_us += pre
        d.post_overhead_us += post
        if timer is not None:
            d.shutdown_timer_us = timer


def plan_trace_directives(
    event_logs: Sequence[Sequence[MPIEvent]],
    config: RuntimeConfig | Sequence[RuntimeConfig],
) -> tuple[list[dict[int, RankDirective]], list[RuntimeStats]]:
    """Run the mechanism on every rank's baseline stream.

    ``config`` may be shared or per-rank (the paper uses one GT per
    application/size, i.e. shared).  Returns per-rank directives and
    statistics, ready for :func:`repro.sim.dimemas.replay_managed`.
    """

    if isinstance(config, RuntimeConfig):
        configs: list[RuntimeConfig] = [config] * len(event_logs)
    else:
        configs = list(config)
        if len(configs) != len(event_logs):
            raise ValueError(
                f"need one config per rank: {len(configs)} != {len(event_logs)}"
            )
    directives: list[dict[int, RankDirective]] = []
    stats: list[RuntimeStats] = []
    for events, cfg in zip(event_logs, configs):
        runtime = PMPIRuntime(cfg)
        directives.append(runtime.process_stream(list(events)))
        stats.append(runtime.stats)
    return directives, stats
