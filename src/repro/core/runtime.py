"""The PMPI interposition runtime: PPA + power mode control per process.

This module glues the pieces exactly the way the paper's Figure 1 shows:
intercept every MPI call; while no prediction holds, run the pattern
prediction component (gram formation + PPA); once a pattern is declared,
switch to the power-mode-control component, which verifies each gram
against the prediction and issues turn-off instructions with programmed
timers; on a pattern misprediction, relaunch the PPA.

Following the paper's trace-driven methodology (Section IV-A), the
runtime consumes the *baseline* timed event stream of one rank and emits
:class:`~repro.sim.mpi.RankDirective` instrumentation — PMPI overheads
per call plus shutdown directives attached to the MPI call after which
the turn-off instruction executes.  The managed replay then applies the
directives, and the reactivation penalties of both misprediction types
emerge from the simulation itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..concurrency import parallel_map, resolve_workers
from ..constants import T_REACT_US
from ..power.states import WRPSParams
from ..sim.mpi import RankDirective
from ..trace.events import MPIEvent
from .grams import GramBuilder
from .overheads import OverheadModel, OverheadReport
from .powerctl import (
    GramCheck,
    PowerControlConfig,
    PowerModeMonitor,
    ShutdownPlan,
    shutdown_timer_us,
)
from .ppa import PPA, PPAConfig, PredictionDeclaration


@dataclass(slots=True)
class RuntimeStats:
    """Per-rank bookkeeping the experiments aggregate."""

    total_calls: int = 0
    predicted_calls: int = 0
    grams_total: int = 0
    grams_matched: int = 0
    pattern_mispredictions: int = 0
    declarations: int = 0
    fast_rearms: int = 0
    shutdowns_planned: int = 0
    ppa_invoked_calls: int = 0
    ppa_operations: int = 0
    ppa_overhead_us: float = 0.0
    intercept_overhead_us: float = 0.0
    #: how many full software-side passes produced this record: always 1
    #: after a real pass; displacement rebinds *copy* the value instead of
    #: re-running, so it stays 1 no matter how many displacement factors
    #: share the plan.
    planning_passes: int = 0

    @property
    def hit_rate_pct(self) -> float:
        """The Table III "MPI call hit rate": correctly predicted calls."""

        if self.total_calls == 0:
            return 0.0
        return 100.0 * self.predicted_calls / self.total_calls

    def overhead_report(self, model: OverheadModel) -> OverheadReport:
        return OverheadReport.from_counts(
            total_calls=self.total_calls,
            invoked_calls=self.ppa_invoked_calls,
            ppa_overhead_us=self.ppa_overhead_us,
            intercept_us=model.intercept_us,
        )


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """Per-run configuration of the mechanism."""

    gt_us: float
    displacement: float = 0.01
    wrps: WRPSParams = field(default_factory=WRPSParams.paper)
    ppa: PPAConfig = field(default_factory=PPAConfig)
    overheads: OverheadModel = field(default_factory=OverheadModel)
    #: include PMPI overheads in the emitted directives (the paper does;
    #: disable for the oracle/no-overhead ablation)
    charge_overheads: bool = True


class PMPIRuntime:
    """The mechanism for one MPI process.

    With ``defer_displacement=True`` the displacement-*independent*
    software side runs normally, but instead of resolving Algorithm 3's
    timer arithmetic the runtime records each consultable idle estimate
    as a :class:`ShutdownCandidate`; :class:`RankPlan` later re-emits the
    timers for any displacement factor without another pass.
    """

    def __init__(
        self, config: RuntimeConfig, *, defer_displacement: bool = False
    ) -> None:
        self.config = config
        self.builder = GramBuilder(config.gt_us)
        self.ppa = PPA(config.ppa)
        self.monitor: PowerModeMonitor | None = None
        self.stats = RuntimeStats()
        self.directives: dict[int, RankDirective] = {}
        self.defer_displacement = defer_displacement
        self.shutdown_candidates: list[ShutdownCandidate] = []
        self._pcc = PowerControlConfig(
            displacement=config.displacement,
            gt_us=config.gt_us,
            t_react_us=config.wrps.t_react_us,
            t_deact_us=config.wrps.t_deact_us,
        )
        self._gram_count = 0
        self._last_exit_us: float | None = None

    # --------------------------------------------------------------- process

    @property
    def predicting(self) -> bool:
        return self.monitor is not None

    def process_stream(self, events: Sequence[MPIEvent]) -> dict[int, RankDirective]:
        """Run the mechanism over one rank's timed event stream."""

        for index, event in enumerate(events):
            self.on_event(index, event)
        self.finish()
        self.stats.planning_passes = 1
        return self.directives

    def on_event(self, index: int, event: MPIEvent) -> None:
        """Handle one intercepted MPI call."""

        cfg = self.config
        stats = self.stats
        stats.total_calls += 1
        pre = cfg.overheads.intercept_us if cfg.charge_overheads else 0.0
        stats.intercept_overhead_us += pre
        post = 0.0
        shutdown: ShutdownPlan | None = None

        gap: float | None = None
        if self._last_exit_us is not None:
            gap = event.enter_us - self._last_exit_us
        self._last_exit_us = event.exit_us

        # gram formation happens once per event regardless of mode; the
        # builder's >= GT rule is the same condition the monitor uses to
        # recognise a boundary, so the two stay consistent by design
        closed = self.builder.feed(event)
        if closed is not None:
            self._gram_count += 1
            stats.grams_total += 1

        if self.monitor is not None:
            if closed is not None:
                self.ppa.append_only(closed)
            shutdown = self._predict_step(index, event, gap)
        else:
            post = self._learn_step(closed)

        if pre > 0 or post > 0 or shutdown is not None:
            self._attach(index, pre=pre, post=post)
            if shutdown is not None:
                self._attach(index, timer=shutdown.timer_us)

    def finish(self) -> None:
        """Flush the trailing gram at end of stream (learning mode only)."""

        closed = self.builder.flush()
        if closed is not None:
            self._gram_count += 1
            self.stats.grams_total += 1
            if self.monitor is None:
                self.ppa.append_only(closed)

    # -------------------------------------------------------------- learning

    def _learn_step(self, closed) -> float:
        """Run the PPA on a freshly closed gram (if any).

        Returns the PPA overhead to charge on this call.
        """

        ops_before = self.ppa.operations
        declaration: PredictionDeclaration | None = None
        if closed is not None:
            declaration = self.ppa.add_gram(closed)
        ops = self.ppa.operations - ops_before
        overhead = 0.0
        if ops > 0:
            self.stats.ppa_invoked_calls += 1
            self.stats.ppa_operations += ops
            overhead = (
                self.config.overheads.ppa_cost_us(ops)
                if self.config.charge_overheads
                else 0.0
            )
            self.stats.ppa_overhead_us += overhead
        if declaration is not None:
            self._activate(declaration)
        return overhead

    def _activate(self, declaration: PredictionDeclaration) -> None:
        """Switch to the power-mode-control component.

        The anchor gram is the one currently open in the builder; any of
        its calls that already arrived are replayed into the monitor so
        the cycle position is exact.  If the open prefix already deviates
        from the pattern, the activation is abandoned (stay learning).
        """

        monitor = PowerModeMonitor(declaration.record, self._pcc)
        for call_id in self.builder.open_calls:
            if monitor.feed_call(call_id) is GramCheck.MISMATCH:
                return
        self.stats.declarations += 1
        if declaration.fast_rearm:
            self.stats.fast_rearms += 1
        self.monitor = monitor

    # ------------------------------------------------------------ predicting

    def _predict_step(
        self, index: int, event: MPIEvent, gap: float | None
    ) -> ShutdownPlan | None:
        """Power-mode-control component for one call."""

        monitor = self.monitor
        assert monitor is not None

        if gap is not None and gap >= self.config.gt_us:
            if not monitor.begin_new_gram(gap):
                self._mispredict()
                return None
        check = monitor.feed_call(int(event.call))
        if check is GramCheck.MISMATCH:
            self._mispredict()
            return None
        if check is GramCheck.MATCH_COMPLETE:
            self.stats.grams_matched += 1
            self.stats.predicted_calls += len(
                monitor.record.key[(monitor.cycle_pos - 1) % monitor.record.size]
            )
            if self.defer_displacement:
                idle = monitor.pending_idle_us()
                if idle is not None:
                    self.shutdown_candidates.append(
                        ShutdownCandidate(index=index, idle_us=idle)
                    )
                return None
            plan = monitor.plan_shutdown()
            if plan is not None:
                self.stats.shutdowns_planned += 1
            return plan
        return None

    def _mispredict(self) -> None:
        """Pattern misprediction: relaunch the pattern prediction part."""

        self.stats.pattern_mispredictions += 1
        self.monitor = None
        # resume scanning with the grams that close from here on; history
        # stays in the pattern list so detected patterns can fast re-arm
        self.ppa.relaunch(len(self.ppa.grams))

    # ---------------------------------------------------------------- output

    def _attach(
        self,
        index: int,
        pre: float = 0.0,
        post: float = 0.0,
        timer: float | None = None,
    ) -> None:
        d = self.directives.get(index)
        if d is None:
            d = RankDirective()
            self.directives[index] = d
        d.pre_overhead_us += pre
        d.post_overhead_us += post
        if timer is not None:
            d.shutdown_timer_us = timer


@dataclass(frozen=True, slots=True)
class ShutdownCandidate:
    """A consultable boundary recorded by the deferred planning pass.

    ``idle_us`` is the EWMA idle estimate at the moment the predicted
    gram completed at MPI call ``index`` — everything Algorithm 3 needs
    apart from the displacement factor.
    """

    index: int
    idle_us: float


@dataclass(slots=True)
class RankPlan:
    """One rank's displacement-independent software side, run once.

    ``directives`` carry the PMPI overheads (no timers);
    ``rebind_displacement`` re-emits the shutdown timers for any
    displacement factor with exactly the float arithmetic of
    :meth:`repro.core.powerctl.PowerModeMonitor.plan_shutdown`, so the
    result is bit-for-bit equal to a dedicated per-displacement pass.
    """

    directives: dict[int, RankDirective]
    candidates: list[ShutdownCandidate]
    stats: RuntimeStats
    gt_us: float
    t_react_us: float
    t_deact_us: float

    def rebind_displacement(
        self, displacement: float
    ) -> tuple[dict[int, RankDirective], RuntimeStats]:
        if not 0.0 <= displacement < 1.0:
            raise ValueError("displacement factor must be in [0, 1)")
        directives = {
            index: replace(d) for index, d in self.directives.items()
        }
        planned = 0
        for cand in self.candidates:
            timer = shutdown_timer_us(
                cand.idle_us,
                displacement=displacement,
                gt_us=self.gt_us,
                t_react_us=self.t_react_us,
                t_deact_us=self.t_deact_us,
            )
            if timer is None:
                continue
            d = directives.get(cand.index)
            if d is None:
                d = RankDirective()
                directives[cand.index] = d
            d.shutdown_timer_us = timer
            planned += 1
        stats = replace(self.stats, shutdowns_planned=planned)
        return directives, stats


@dataclass(slots=True)
class TracePlan:
    """The displacement-independent planning pass for a whole trace."""

    ranks: list[RankPlan]

    def rebind_displacement(
        self, displacement: float
    ) -> tuple[list[dict[int, RankDirective]], list[RuntimeStats]]:
        """Directives + stats for ``displacement``, without re-planning."""

        directives: list[dict[int, RankDirective]] = []
        stats: list[RuntimeStats] = []
        for rank_plan in self.ranks:
            d, s = rank_plan.rebind_displacement(displacement)
            directives.append(d)
            stats.append(s)
        return directives, stats


def _broadcast_configs(
    event_logs: Sequence[Sequence[MPIEvent]],
    config: RuntimeConfig | Sequence[RuntimeConfig],
) -> list[RuntimeConfig]:
    if isinstance(config, RuntimeConfig):
        return [config] * len(event_logs)
    configs = list(config)
    if len(configs) != len(event_logs):
        raise ValueError(
            f"need one config per rank: {len(configs)} != {len(event_logs)}"
        )
    return configs


def _plan_rank(
    args: tuple[Sequence[MPIEvent], RuntimeConfig, bool],
) -> tuple[dict[int, RankDirective], RuntimeStats, list[ShutdownCandidate]]:
    """Worker body: one rank's full software-side pass (picklable)."""

    events, cfg, defer = args
    runtime = PMPIRuntime(cfg, defer_displacement=defer)
    directives = runtime.process_stream(events)
    return directives, runtime.stats, runtime.shutdown_candidates


def plan_trace_directives(
    event_logs: Sequence[Sequence[MPIEvent]],
    config: RuntimeConfig | Sequence[RuntimeConfig],
    *,
    workers: int | None = None,
) -> tuple[list[dict[int, RankDirective]], list[RuntimeStats]]:
    """Run the mechanism on every rank's baseline stream.

    ``config`` may be shared or per-rank (the paper uses one GT per
    application/size, i.e. shared).  Returns per-rank directives and
    statistics, ready for :func:`repro.sim.dimemas.replay_managed`.
    Ranks are independent; ``workers`` (or ``REPRO_WORKERS``) > 1 fans
    them out over processes with identical results.
    """

    configs = _broadcast_configs(event_logs, config)
    results = parallel_map(
        _plan_rank,
        [(events, cfg, False) for events, cfg in zip(event_logs, configs)],
        resolve_workers(workers),
    )
    return [r[0] for r in results], [r[1] for r in results]


def plan_trace_directives_shared(
    event_logs: Sequence[Sequence[MPIEvent]],
    config: RuntimeConfig | Sequence[RuntimeConfig],
    *,
    workers: int | None = None,
) -> TracePlan:
    """One displacement-independent planning pass for the whole trace.

    The returned :class:`TracePlan` re-emits per-displacement directives
    via :meth:`TracePlan.rebind_displacement`; Figs. 7-9 share a single
    pass this way instead of re-running the runtime per displacement.
    """

    configs = _broadcast_configs(event_logs, config)
    results = parallel_map(
        _plan_rank,
        [(events, cfg, True) for events, cfg in zip(event_logs, configs)],
        resolve_workers(workers),
    )
    return TracePlan(
        ranks=[
            RankPlan(
                directives=directives,
                candidates=candidates,
                stats=stats,
                gt_us=cfg.gt_us,
                t_react_us=cfg.wrps.t_react_us,
                t_deact_us=cfg.wrps.t_deact_us,
            )
            for (directives, stats, candidates), cfg in zip(results, configs)
        ]
    )
