"""Grouping-threshold evaluation and selection (Section IV-C).

The GT decides which MPI calls merge into one gram.  Too small and jitter
splits grams inconsistently across iterations (mispredictions); too large
and genuine idle windows disappear inside grams (no savings).  The paper
sweeps GT from the 2*T_react minimum upward (Fig. 10) and picks, per
application and process count, the value that maximises the rate of
correctly predicted MPI calls (Table III).

``evaluate_gt`` replays the mechanism's *software* side (gram formation,
PPA, monitor) over baseline event streams — no network simulation — so a
full sweep is cheap; ``select_gt`` applies the paper's criterion, with
ties broken towards the smaller GT (more shutdown windows survive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..constants import MIN_GROUPING_THRESHOLD_US
from ..trace.events import MPIEvent
from .overheads import OverheadModel
from .ppa import PPAConfig
from .runtime import PMPIRuntime, RuntimeConfig, RuntimeStats


@dataclass(frozen=True, slots=True)
class GTEvaluation:
    """Aggregate outcome of running the mechanism at one GT value."""

    gt_us: float
    hit_rate_pct: float
    predicted_calls: int
    total_calls: int
    shutdowns_planned: int
    pattern_mispredictions: int
    grams_total: int

    @property
    def mean_calls_per_gram(self) -> float:
        if self.grams_total == 0:
            return 0.0
        return self.total_calls / self.grams_total


def evaluate_gt(
    event_logs: Sequence[Sequence[MPIEvent]],
    gt_us: float,
    *,
    displacement: float = 0.01,
    ppa: PPAConfig | None = None,
) -> GTEvaluation:
    """Run the mechanism (software side only) at one GT over all ranks."""

    cfg = RuntimeConfig(
        gt_us=gt_us,
        displacement=displacement,
        ppa=ppa or PPAConfig(),
        overheads=OverheadModel(),
        charge_overheads=False,
    )
    stats: list[RuntimeStats] = []
    for events in event_logs:
        runtime = PMPIRuntime(cfg)
        runtime.process_stream(list(events))
        stats.append(runtime.stats)
    total = sum(s.total_calls for s in stats)
    predicted = sum(s.predicted_calls for s in stats)
    return GTEvaluation(
        gt_us=gt_us,
        hit_rate_pct=100.0 * predicted / total if total else 0.0,
        predicted_calls=predicted,
        total_calls=total,
        shutdowns_planned=sum(s.shutdowns_planned for s in stats),
        pattern_mispredictions=sum(s.pattern_mispredictions for s in stats),
        grams_total=sum(s.grams_total for s in stats),
    )


def default_gt_candidates(
    low_us: float = MIN_GROUPING_THRESHOLD_US, high_us: float = 400.0
) -> list[float]:
    """The paper's Fig. 10 sweep range: 2*T_react up to ~400 us."""

    if low_us < MIN_GROUPING_THRESHOLD_US:
        raise ValueError("GT below the 2*T_react minimum")
    candidates: list[float] = []
    v = low_us
    while v <= high_us + 1e-9:
        candidates.append(round(v, 3))
        # finer steps at the small end, where most applications peak
        v += 2.0 if v < 60.0 else (10.0 if v < 150.0 else 25.0)
    return candidates


def gt_sweep(
    event_logs: Sequence[Sequence[MPIEvent]],
    candidates: Iterable[float] | None = None,
    *,
    displacement: float = 0.01,
    max_ranks: int | None = None,
) -> list[GTEvaluation]:
    """Fig. 10: hit rate as a function of GT.

    ``max_ranks`` caps how many ranks are evaluated (the hit-rate curve
    is a per-rank software property; a sample is representative and keeps
    the sweep fast for large runs).
    """

    logs = list(event_logs)
    if max_ranks is not None and len(logs) > max_ranks:
        step = len(logs) / max_ranks
        logs = [logs[int(i * step)] for i in range(max_ranks)]
    values = list(candidates) if candidates is not None else default_gt_candidates()
    return [evaluate_gt(logs, gt, displacement=displacement) for gt in values]


def select_gt(
    event_logs: Sequence[Sequence[MPIEvent]],
    candidates: Iterable[float] | None = None,
    *,
    displacement: float = 0.01,
    max_ranks: int | None = 4,
) -> GTEvaluation:
    """Table III criterion: maximise hit rate, prefer the smaller GT.

    The small-GT preference implements the paper's observation that "a
    large GT value will reduce the number of idle intervals where
    shifting to low-power mode is possible".
    """

    sweep = gt_sweep(
        event_logs, candidates, displacement=displacement, max_ranks=max_ranks
    )
    if not sweep:
        raise ValueError("empty GT candidate list")
    best = sweep[0]
    for ev in sweep[1:]:
        if ev.hit_rate_pct > best.hit_rate_pct + 1e-9:
            best = ev
    return best
