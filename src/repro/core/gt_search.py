"""Grouping-threshold evaluation and selection (Section IV-C).

The GT decides which MPI calls merge into one gram.  Too small and jitter
splits grams inconsistently across iterations (mispredictions); too large
and genuine idle windows disappear inside grams (no savings).  The paper
sweeps GT from the 2*T_react minimum upward (Fig. 10) and picks, per
application and process count, the value that maximises the rate of
correctly predicted MPI calls (Table III).

``evaluate_gt`` replays the mechanism's *software* side (gram formation,
PPA, monitor) over baseline event streams — no network simulation.  The
sweep runs on the vectorised :mod:`repro.core.fastscan` layer: per-rank
gap/call arrays are precomputed once, candidates are bucketed into
boundary-equivalence groups in a single pass over the sorted gap array,
and one gram-granular pass per group serves every candidate in it —
bit-for-bit equal to the per-candidate slow path, at ~one runtime pass
instead of one per candidate.  ``select_gt`` applies the paper's
criterion, with ties (within an explicit tolerance) broken towards the
smaller GT (more shutdown windows survive).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from ..concurrency import resolve_workers
from ..constants import MIN_GROUPING_THRESHOLD_US
from ..power.states import WRPSParams
from ..trace.events import MPIEvent
from .fastscan import RankScan, count_shutdowns, group_candidates, scan_ranks
from .overheads import OverheadModel
from .ppa import PPAConfig
from .runtime import PMPIRuntime, RuntimeConfig, RuntimeStats

#: hit rates closer than this (in percentage points) count as a tie and
#: the smaller GT wins; hit rates are ratios of call counts, so genuine
#: differences are orders of magnitude larger.
GT_TIE_TOLERANCE_PCT = 1e-9

#: rank sample used by GT selection (the hit-rate curve is a per-rank
#: software property; a small sample is representative).  Consumers that
#: reuse a stored selection sweep (Fig. 10) key on this constant.
DEFAULT_SELECT_MAX_RANKS = 4


@dataclass(frozen=True, slots=True)
class GTEvaluation:
    """Aggregate outcome of running the mechanism at one GT value."""

    gt_us: float
    hit_rate_pct: float
    predicted_calls: int
    total_calls: int
    shutdowns_planned: int
    pattern_mispredictions: int
    grams_total: int

    @property
    def mean_calls_per_gram(self) -> float:
        if self.grams_total == 0:
            return 0.0
        return self.total_calls / self.grams_total


@dataclass(frozen=True, slots=True)
class GTSelection:
    """Outcome of :func:`select_gt_detailed`: the winner plus the full
    sweep it was chosen from (Fig. 10 / Table III consumers reuse the
    sweep instead of re-running it)."""

    best: GTEvaluation
    sweep: tuple[GTEvaluation, ...]

    @property
    def gt_us(self) -> float:
        return self.best.gt_us

    @property
    def hit_rate_pct(self) -> float:
        return self.best.hit_rate_pct


def _aggregate(gt_us: float, stats: Sequence[RuntimeStats]) -> GTEvaluation:
    total = sum(s.total_calls for s in stats)
    predicted = sum(s.predicted_calls for s in stats)
    return GTEvaluation(
        gt_us=gt_us,
        hit_rate_pct=100.0 * predicted / total if total else 0.0,
        predicted_calls=predicted,
        total_calls=total,
        shutdowns_planned=sum(s.shutdowns_planned for s in stats),
        pattern_mispredictions=sum(s.pattern_mispredictions for s in stats),
        grams_total=sum(s.grams_total for s in stats),
    )


def _evaluate_gt_reference(
    event_logs: Sequence[Sequence[MPIEvent]],
    gt_us: float,
    *,
    displacement: float = 0.01,
    ppa: PPAConfig | None = None,
) -> GTEvaluation:
    """The seed's per-candidate slow path: one full event-level runtime
    pass per rank.  Kept as the equivalence oracle for the fast sweep
    (``tests/core/test_fastscan.py``)."""

    cfg = RuntimeConfig(
        gt_us=gt_us,
        displacement=displacement,
        ppa=ppa or PPAConfig(),
        overheads=OverheadModel(),
        charge_overheads=False,
    )
    stats: list[RuntimeStats] = []
    for events in event_logs:
        runtime = PMPIRuntime(cfg)
        runtime.process_stream(events)
        stats.append(runtime.stats)
    return _aggregate(gt_us, stats)


def evaluate_gt(
    event_logs: Sequence[Sequence[MPIEvent]],
    gt_us: float,
    *,
    displacement: float = 0.01,
    ppa: PPAConfig | None = None,
) -> GTEvaluation:
    """Run the mechanism (software side only) at one GT over all ranks."""

    return gt_sweep(event_logs, [gt_us], displacement=displacement, ppa=ppa)[0]


def default_gt_candidates(
    low_us: float = MIN_GROUPING_THRESHOLD_US, high_us: float = 400.0
) -> list[float]:
    """The paper's Fig. 10 sweep range: 2*T_react up to ~400 us."""

    if low_us < MIN_GROUPING_THRESHOLD_US:
        raise ValueError("GT below the 2*T_react minimum")
    candidates: list[float] = []
    v = low_us
    while v <= high_us + 1e-9:
        candidates.append(round(v, 3))
        # finer steps at the small end, where most applications peak
        v += 2.0 if v < 60.0 else (10.0 if v < 150.0 else 25.0)
    return candidates


def _sample_logs(event_logs, max_ranks):
    logs = list(event_logs)
    if max_ranks is not None and len(logs) > max_ranks:
        step = len(logs) / max_ranks
        logs = [logs[int(i * step)] for i in range(max_ranks)]
    return logs


def gt_sweep(
    event_logs: Sequence[Sequence[MPIEvent]],
    candidates: Iterable[float] | None = None,
    *,
    displacement: float = 0.01,
    max_ranks: int | None = None,
    ppa: PPAConfig | None = None,
    workers: int | None = None,
) -> list[GTEvaluation]:
    """Fig. 10: hit rate as a function of GT, in ~one runtime pass.

    ``max_ranks`` caps how many ranks are evaluated (the hit-rate curve
    is a per-rank software property; a sample is representative and keeps
    the sweep fast for large runs).  ``workers`` (or ``REPRO_WORKERS``)
    fans the per-rank scans out over processes.
    """

    logs = _sample_logs(event_logs, max_ranks)
    values = list(candidates) if candidates is not None else default_gt_candidates()
    if not values:
        return []
    wrps = WRPSParams.paper()
    nproc = resolve_workers(workers)

    scans = [RankScan.from_events(events) for events in logs]
    groups = group_candidates(scans, values)
    grouped_outcomes = scan_ranks(
        scans,
        [representative for representative, _members in groups],
        ppa=ppa,
        charge_overheads=False,
        workers=nproc,
    )
    results: dict[float, GTEvaluation] = {}
    for (representative, members), outcomes in zip(groups, grouped_outcomes):
        base = _aggregate(representative, [o.stats for o in outcomes])
        idles = np.concatenate(
            [np.asarray(o.idles_us, np.float64) for o in outcomes]
        ) if outcomes else np.empty(0, np.float64)
        shutdowns = count_shutdowns(
            idles,
            members,
            displacement=displacement,
            t_react_us=wrps.t_react_us,
            t_deact_us=wrps.t_deact_us,
        )
        for gt in members:
            results[gt] = replace(
                base, gt_us=gt, shutdowns_planned=shutdowns[gt]
            )
    return [results[gt] for gt in values]


def select_gt_detailed(
    event_logs: Sequence[Sequence[MPIEvent]],
    candidates: Iterable[float] | None = None,
    *,
    displacement: float = 0.01,
    max_ranks: int | None = DEFAULT_SELECT_MAX_RANKS,
    tie_tolerance_pct: float = GT_TIE_TOLERANCE_PCT,
    workers: int | None = None,
) -> GTSelection:
    """Table III criterion with the full sweep attached.

    Maximise the hit rate; among candidates within ``tie_tolerance_pct``
    of the maximum, pick the smallest GT.  The small-GT preference
    implements the paper's observation that "a large GT value will
    reduce the number of idle intervals where shifting to low-power mode
    is possible" — and holds regardless of candidate ordering.
    """

    sweep = gt_sweep(
        event_logs,
        candidates,
        displacement=displacement,
        max_ranks=max_ranks,
        workers=workers,
    )
    if not sweep:
        raise ValueError("empty GT candidate list")
    best_rate = max(ev.hit_rate_pct for ev in sweep)
    ties = [ev for ev in sweep if ev.hit_rate_pct >= best_rate - tie_tolerance_pct]
    best = min(ties, key=lambda ev: ev.gt_us)
    return GTSelection(best=best, sweep=tuple(sweep))


def select_gt(
    event_logs: Sequence[Sequence[MPIEvent]],
    candidates: Iterable[float] | None = None,
    *,
    displacement: float = 0.01,
    max_ranks: int | None = DEFAULT_SELECT_MAX_RANKS,
    tie_tolerance_pct: float = GT_TIE_TOLERANCE_PCT,
    workers: int | None = None,
) -> GTEvaluation:
    """Table III criterion: maximise hit rate, prefer the smaller GT."""

    return select_gt_detailed(
        event_logs,
        candidates,
        displacement=displacement,
        max_ranks=max_ranks,
        tie_tolerance_pct=tie_tolerance_pct,
        workers=workers,
    ).best
