"""Energy accounting: per-link power-state timelines and their integrals.

Every managed link owns a :class:`LinkEnergyAccount` that records the
piecewise-constant power-state timeline produced by the controller.  At
the end of a run the account is *closed* at the simulation end time and
integrated; the run-level savings number the paper reports —

    power savings [%] = (1 - E_managed / E_always_on) * 100

— is the residency-weighted average over links (E_always_on is nominal
power times wall time).
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Iterable, Sequence

from ..network.links import LinkPowerMode
from .states import WRPSParams


@dataclass(frozen=True, slots=True)
class StateInterval:
    """One segment of a link's power timeline.

    ``power`` overrides the mode's nominal power fraction for this
    segment — multi-level policies park a link at intermediate operating
    points (2X width, half clock) that all map to mode LOW but draw
    different power.  ``None`` means "the mode's nominal draw", which is
    what the paper's on/off gate always records.
    """

    start_us: float
    end_us: float
    mode: LinkPowerMode
    power: float | None = None

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(slots=True)
class LinkEnergyAccount:
    """Power-state timeline of one link.

    The timeline always starts at t=0 in FULL mode.  Transitions are
    appended in nondecreasing time order; the final interval is open
    until :meth:`close` pins the simulation end.
    """

    params: WRPSParams
    intervals: list[StateInterval] = field(default_factory=list)
    _mode: LinkPowerMode = LinkPowerMode.FULL
    _since_us: float = 0.0
    _closed: bool = False
    transitions_to_low: int = 0
    _power: float | None = None
    #: timeline origin — a cluster job admitted mid-run opens its episode
    #: at its admission time instead of t=0
    start_us: InitVar[float] = 0.0

    def __post_init__(self, start_us: float) -> None:
        if start_us:
            self._since_us = start_us

    @property
    def current_mode(self) -> LinkPowerMode:
        return self._mode

    @property
    def closed(self) -> bool:
        """True once :meth:`close` pinned the end of the timeline.

        Cluster replays use this to drop power directives that trail a
        job's torn-down link episode (the link has been handed to the
        next tenant or the run has ended).
        """

        return self._closed

    def switch_mode(self, t_us: float, mode: LinkPowerMode) -> None:
        """Enter ``mode`` at time ``t_us`` (at the mode's nominal power)."""

        self.set_state(t_us, mode, None)

    def set_state(
        self, t_us: float, mode: LinkPowerMode, power: float | None
    ) -> None:
        """Enter ``mode`` at ``t_us``, drawing ``power`` while resident.

        Unlike the mode-only path this splits the timeline even when the
        mode is unchanged but the power differs — a multi-level policy
        stepping 2X→1X stays in LOW while its draw drops.
        """

        if self._closed:
            raise RuntimeError("account already closed")
        if t_us < self._since_us - 1e-9:
            raise ValueError(
                f"time went backwards: {t_us} < {self._since_us}"
            )
        t_us = max(t_us, self._since_us)
        if mode is self._mode and power == self._power:
            return
        if t_us > self._since_us:
            self.intervals.append(
                StateInterval(self._since_us, t_us, self._mode, self._power)
            )
        if mode is LinkPowerMode.LOW and self._mode is not LinkPowerMode.LOW:
            self.transitions_to_low += 1
        self._mode = mode
        self._power = power
        self._since_us = t_us

    def close(self, t_end_us: float) -> None:
        if self._closed:
            return
        if t_end_us > self._since_us:
            self.intervals.append(
                StateInterval(self._since_us, t_end_us, self._mode, self._power)
            )
        self._closed = True

    # -- integrals -----------------------------------------------------------

    def integrate(self) -> tuple[float, float, float]:
        """One pass over the timeline: ``(total_us, energy_us, low_us)``.

        Exactly the sums the per-metric helpers below produce, accumulated
        together so run-level aggregation touches each interval once
        instead of four times.  The accumulation order matches the
        individual ``sum()`` passes, so the floats are bit-identical.
        """

        total = 0.0
        energy = 0.0
        low = 0.0
        power_of = self.params.power_of
        low_mode = LinkPowerMode.LOW
        for i in self.intervals:
            d = i.end_us - i.start_us
            total += d
            p = i.power
            energy += (power_of(i.mode) if p is None else p) * d
            if i.mode is low_mode:
                low += d
        return total, energy, low

    def residency_us(self, mode: LinkPowerMode) -> float:
        return sum(i.duration_us for i in self.intervals if i.mode is mode)

    @property
    def total_us(self) -> float:
        return sum(i.duration_us for i in self.intervals)

    def energy(self) -> float:
        """Integral of normalised power over the timeline (units: us)."""

        power_of = self.params.power_of
        return sum(
            (power_of(i.mode) if i.power is None else i.power) * i.duration_us
            for i in self.intervals
        )

    def savings_fraction(self) -> float:
        """1 - E/E_always_on over this link's timeline."""

        total = self.total_us
        if total <= 0:
            return 0.0
        return 1.0 - self.energy() / total

    def low_power_fraction_of_time(self) -> float:
        total = self.total_us
        if total <= 0:
            return 0.0
        return self.residency_us(LinkPowerMode.LOW) / total


@dataclass(frozen=True, slots=True)
class PowerReport:
    """Aggregated power outcome of one simulated run."""

    mean_savings_pct: float
    per_link_savings_pct: tuple[float, ...]
    mean_low_residency_pct: float
    total_transitions_to_low: int
    wall_time_us: float

    @property
    def max_possible_savings_pct(self) -> float:
        """Upper bound if links were in LOW 100 % of the time."""

        return 100.0  # placeholder overridden by aggregate()


def aggregate(
    accounts: Sequence[LinkEnergyAccount], wall_time_us: float
) -> PowerReport:
    """Close and integrate all accounts; average over links.

    The paper averages "over all MPI processes" — i.e. over HCA links —
    which is what callers pass here.
    """

    if not accounts:
        raise ValueError("no accounts to aggregate")
    savings: list[float] = []
    low_res: list[float] = []
    transitions = 0
    for acc in accounts:
        acc.close(wall_time_us)
        total, energy, low = acc.integrate()
        if total > 0:
            savings.append(100.0 * (1.0 - energy / total))
            low_res.append(100.0 * (low / total))
        else:
            savings.append(0.0)
            low_res.append(0.0)
        transitions += acc.transitions_to_low
    return PowerReport(
        mean_savings_pct=sum(savings) / len(savings),
        per_link_savings_pct=tuple(savings),
        mean_low_residency_pct=sum(low_res) / len(low_res),
        total_transitions_to_low=transitions,
        wall_time_us=wall_time_us,
    )


def switch_level_savings_pct(
    link_savings_pct: float, link_share: float
) -> float:
    """Scale link-level savings to whole-switch power.

    The paper's headline numbers follow the link-power convention; this
    helper expresses them against total switch power using the IBM 64 %
    link-share datum, for the discussion section of EXPERIMENTS.md.
    """

    if not 0.0 <= link_share <= 1.0:
        raise ValueError("link_share must be in [0, 1]")
    return link_savings_pct * link_share
