"""HCA link power controller with hardware reactivation timer (Fig. 5).

The paper adds one hardware timer per link: when the runtime issues the
turn-off-lanes instruction it also programs the timer with the predicted
idle time; when the timer elapses, firmware reactivates the lanes without
interrupting the CPU.  Management is one-directional — the runtime never
hears back whether the prediction was right.

:class:`ManagedLink` couples a fabric :class:`~repro.network.links.Link`
with an energy account and implements that protocol:

* :meth:`shutdown` — turn-off instruction + timer programming;
* :meth:`request_full` — invoked (via the fabric's power-block hook) when
  a transfer finds the link below full width; performs the emergency
  reactivation and reports when the link is usable, recording the
  misprediction penalty.

Timeline committed to the energy account for a normal cycle::

    t_off            t_off+t_deact      t_fire           t_fire+t_react
      |--TRANSITION--|------LOW---------|--TRANSITION----|---FULL...
                         (timer runs)      (reactivation)

The timer starts when the turn-off instruction executes (paper §III-B:
"timers ... are activated upon the turn off lanes instructions are
executed"), so ``t_fire = t_off + timer_us``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..network.links import Link, LinkPowerMode
from .model import LinkEnergyAccount
from .states import WRPSParams


@dataclass(slots=True)
class PowerEventCounters:
    """Per-link statistics the experiments report."""

    shutdowns: int = 0
    timer_reactivations: int = 0
    emergency_reactivations: int = 0   # arrived in LOW: full T_react penalty
    late_reactivations: int = 0        # arrived mid-reactivation: partial
    total_penalty_us: float = 0.0
    skipped_too_short: int = 0         # directive's timer fits no level
    skipped_not_full: int = 0          # back-to-back directive, not FULL
    #: fault injection: reactivations that missed their t_react deadline
    wake_timeouts: int = 0
    wake_timeout_extra_us: float = 0.0

    @property
    def skipped_directives(self) -> int:
        """All refused directives — the pre-split ``skipped_too_short``."""

        return self.skipped_too_short + self.skipped_not_full


@dataclass(slots=True)
class ManagedLink:
    """WRPS power management wrapped around one fabric link."""

    link: Link
    params: WRPSParams
    account: LinkEnergyAccount
    counters: PowerEventCounters = field(default_factory=PowerEventCounters)
    #: scheduled end of the pending LOW window (timer fire time), if any
    _t_fire_us: float | None = None
    _t_deact_end_us: float = 0.0
    #: fault injection: wake-timeout model + this link's draw key (its
    #: host rank); None = reactivations always meet t_react (default)
    wake_faults: "object | None" = None
    wake_key: int = 0
    #: the pending reactivation's spike, drawn once at shutdown time so
    #: repeated _settle calls on one timer see a single consistent value
    _pending_spike_us: float = 0.0

    @classmethod
    def create(
        cls,
        link: Link,
        params: WRPSParams | None = None,
        *,
        wake_faults=None,
        wake_key: int = 0,
        start_us: float = 0.0,
    ) -> "ManagedLink":
        """Wrap ``link``; the energy account opens (FULL) at ``start_us``.

        ``start_us`` defaults to the single-job convention (management
        begins at t=0); a cluster job admitted mid-run opens its episode
        at its admission time, so the account's span is the occupancy
        window rather than the whole cluster timeline.
        """

        p = params or WRPSParams.paper()
        link.t_react_us = p.t_react_us
        account = LinkEnergyAccount(p, start_us=start_us)
        return cls(
            link=link,
            params=p,
            account=account,
            wake_faults=wake_faults,
            wake_key=wake_key,
        )

    # -- runtime-facing API ----------------------------------------------------

    def power_of(self, mode: LinkPowerMode) -> float:
        return self.params.power_of(mode)

    def worthwhile(self, predicted_idle_us: float) -> bool:
        """Paper break-even test: T_idle must exceed 2 * T_react."""

        return predicted_idle_us > self.params.min_worthwhile_idle_us

    def shutdown(self, t_off_us: float, timer_us: float) -> bool:
        """Execute the turn-off-lanes instruction at ``t_off_us``.

        ``timer_us`` is the value programmed into the hardware timer (the
        runtime computes it as ``predicted_idle - safety_limit`` per
        Algorithm 3).  Returns ``False`` (and does nothing) if the window
        is too short to fit the deactivation, or if the link is not
        currently at full width (back-to-back directives).
        """

        if timer_us <= self.params.t_deact_us:
            self.counters.skipped_too_short += 1
            return False
        self._settle(t_off_us)
        if self.link.mode is not LinkPowerMode.FULL:
            self.counters.skipped_not_full += 1
            return False

        t_low = t_off_us + self.params.t_deact_us
        t_fire = t_off_us + timer_us
        self.account.switch_mode(t_off_us, LinkPowerMode.TRANSITION)
        self.account.switch_mode(t_low, LinkPowerMode.LOW)
        self.link.mode = LinkPowerMode.LOW
        self._t_fire_us = t_fire
        self._t_deact_end_us = t_low
        if self.wake_faults is not None:
            # drawn once per shutdown (keyed on the shutdown ordinal) so
            # every path that completes this reactivation sees one value
            self._pending_spike_us = self.wake_faults.spike(
                self.wake_key, self.counters.shutdowns
            )
        self.counters.shutdowns += 1
        return True

    def request_full(self, t_us: float) -> float:
        """A transfer needs full width at ``t_us``; return when usable.

        This is the misprediction path: in the well-predicted case the
        timer has already fired and :meth:`_settle` has returned the link
        to FULL before anything asks for it.
        """

        self._settle(t_us)
        mode = self.link.mode
        if mode is LinkPowerMode.FULL:
            return t_us
        if mode is LinkPowerMode.LOW:
            # Emergency reactivation: cancel the timer and pay T_react.
            # If the request lands while the deactivation is still in
            # flight ([t_off, t_off+t_deact)), the reactivation can only
            # start once the lanes have finished powering down.
            start = max(t_us, self._t_deact_end_us)
            ready = start + self.params.t_react_us + self._consume_spike()
            self.account.switch_mode(start, LinkPowerMode.TRANSITION)
            self.account.switch_mode(ready, LinkPowerMode.FULL)
            self.link.mode = LinkPowerMode.FULL
            self._t_fire_us = None
            self.counters.emergency_reactivations += 1
            self.counters.total_penalty_us += ready - t_us
            return ready
        # TRANSITION: timer-driven reactivation still in flight
        ready = max(t_us, self.link.reactivation_done_us)
        penalty = ready - t_us
        if penalty > 0:
            self.counters.late_reactivations += 1
            self.counters.total_penalty_us += penalty
        return ready

    def finish(self, t_end_us: float) -> None:
        """Commit any pending timer event and close the account."""

        self._settle(t_end_us)
        if self.link.mode is not LinkPowerMode.FULL:
            # run ended inside a LOW window or reactivation; the account
            # keeps whatever mode was active until the end of time
            pass
        self.account.close(t_end_us)

    # -- internal ---------------------------------------------------------------

    def _settle(self, t_us: float) -> None:
        """Commit the timer-driven reactivation if it fired before ``t_us``."""

        if self._t_fire_us is None:
            return
        t_fire = self._t_fire_us
        t_full = t_fire + self.params.t_react_us + self._pending_spike_us
        if t_us >= t_fire:
            # the timer fired: reactivation runs [t_fire, t_fire + T_react)
            self.account.switch_mode(t_fire, LinkPowerMode.TRANSITION)
            if t_us >= t_full:
                self.account.switch_mode(t_full, LinkPowerMode.FULL)
                self.link.mode = LinkPowerMode.FULL
                self._t_fire_us = None
                self.counters.timer_reactivations += 1
                self._consume_spike()
            else:
                self.link.mode = LinkPowerMode.TRANSITION
                self.link.reactivation_done_us = t_full

    def _consume_spike(self) -> float:
        """Account the pending wake-timeout spike (fault injection)."""

        spike = self._pending_spike_us
        if spike > 0.0:
            self.counters.wake_timeouts += 1
            self.counters.wake_timeout_extra_us += spike
            self._pending_spike_us = 0.0
        return spike
