"""Pluggable power-policy registry: gate / width / scale per link class.

The paper hard-wires one mechanism (WRPS on/off lane gating, driven by
the runtime's idle predictions) to one link class (the HCA links).  This
module generalises both axes in the spirit of the ``nrm`` power-policy
split (``powerpolicy.py`` + ``ddcmpolicy.py``): a registry of *policy
families* —

* ``gate``  — the paper's on/off WRPS (all reduced lanes at once;
  exactly today's :class:`~repro.power.controller.ManagedLink`);
* ``width`` — multi-level lane reduction (DDCM analogue): 4X→2X→1X,
  each width with its own power fraction, bandwidth fraction and
  (proportionally cheaper) reactivation time;
* ``scale`` — SerDes speed scaling (DVFS analogue): full/half/quarter
  clock, quadratic power in speed with the port's static floor, and a
  per-level ``t_react`` (PLL relock grows with the frequency step);

— applicable per *link class*:

* ``hca``    — host links: **prediction-driven** (the runtime's shutdown
  directives program the hardware timer, as in the paper);
* ``trunk``  — switch-to-switch links: **reactively idle-gated** (no MPI
  runtime sees these links, so the hardware steps down after a
  hysteresis period of observed idleness and pays the reactivation on
  the next transfer — the same protocol mispredicted HCAs pay);
* ``switch`` — whole-switch gating of the non-link share (buffers /
  crossbar): reactive like trunks, driven by traffic through any of the
  switch's ports, composed with the per-switch rollup.

A scenario is a spec string parsed exactly like ``faults:`` / topology
specs::

    policy:hca=gate,trunk=width:levels=3,switch=gate

Class assignments may appear in any order; a policy's own parameters
follow its name after ``:`` (and further ``key=value`` items up to the
next class assignment also bind to it).  Parsing is deterministic and
seed-free; :meth:`PolicySpec.describe` is the canonical form and
``parse_policy(spec.describe()) == spec``.

The default spec — ``policy:hca=gate`` with trunks and switches
unmanaged — reproduces the pre-registry pipeline bit for bit: the HCA
class maps to the untouched :class:`ManagedLink` and no other controller
is registered, so the replay's float operations are exactly the old
ones.  That compatibility invariant is pinned in the differential tier.

## Why trunk/switch management is *reactive* (and lazily simulated)

Interior links get no directives: the PMPI layer only observes each
rank's MPI calls, so there is no prediction to program a trunk timer
with.  Reactive hardware gating (step down after ``gate_after_us`` of
idleness, pay ``t_react`` on the next arrival) is the bracket the paper
itself uses as the HW-only baseline.  The simulation applies it
*lazily*, like the fault layer's clock-driven events: a managed trunk
link keeps ``Link.mode = LOW`` so the fabric's power-block hook fires on
every transfer through it, and the controller reconstructs the descent
staircase for the idle gap it just observed (channel busy logs are the
ground truth) — no engine callbacks, so off-trace timer events can
never inflate the replayed execution time, and both replay kernels see
identical penalties by construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..network.links import Link, LinkPowerMode
from .controller import ManagedLink, PowerEventCounters
from .model import LinkEnergyAccount
from .states import WRPSParams

#: the spec every replay uses unless told otherwise: the paper's setup
DEFAULT_POLICY = "policy:hca=gate"

#: spec string meaning "no class is power-managed at all"
NO_POLICY = "none"

#: link classes a spec may assign a policy to, in canonical order
LINK_CLASSES = ("hca", "trunk", "switch")

#: number of lanes in a 4X IB link (the width policy's descent domain)
_LANES = 4


class PolicySpecError(ValueError):
    """A malformed ``policy:...`` spec string or parameter."""


@runtime_checkable
class PowerPolicy(Protocol):
    """What the replay drivers require of a per-link power controller.

    :class:`~repro.power.controller.ManagedLink`, :class:`LeveledLink`,
    :class:`IdleGatedLink` and :class:`GatedSwitch` all conform.
    """

    def worthwhile(self, predicted_idle_us: float) -> bool: ...

    def shutdown(self, t_off_us: float, timer_us: float) -> bool: ...

    def request_full(self, t_us: float) -> float: ...

    def finish(self, t_end_us: float) -> None: ...

    def power_of(self, mode: LinkPowerMode) -> float: ...


# ---------------------------------------------------------------------------
# power levels


@dataclass(frozen=True, slots=True)
class PowerLevel:
    """One reduced operating point of a policy's descent ladder."""

    name: str
    #: normalised power draw while resident at this level
    power_fraction: float
    #: fraction of nominal bandwidth available at this level
    #: (informational — the replay waits for full width, as the paper's
    #: WRPS protocol does, so reactivation time is what costs)
    bandwidth_fraction: float
    #: reactivation time back to FULL from this level
    t_react_us: float
    #: time to descend into this level (from the previous one)
    t_deact_us: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_fraction <= 1.0:
            raise PolicySpecError("level power_fraction must be in [0, 1]")
        if self.t_react_us < 0 or self.t_deact_us < 0:
            raise PolicySpecError("level transition times must be >= 0")


def _static_floor(wrps: WRPSParams) -> float:
    """Per-port static power share, solved from the WRPS datum.

    The paper's one calibration point: 1 of 4 lanes draws
    ``low_power_fraction`` (43 %) of nominal.  With power modelled as
    ``static + (1 - static) * lane_fraction``, the static share follows
    from that datum, and every other width's power is derived from the
    same measurement instead of a new free parameter.
    """

    low = wrps.low_power_fraction
    lane = 1.0 / _LANES
    return max(0.0, (low - lane) / (1.0 - lane))


def gate_levels(wrps: WRPSParams, levels: int = 2) -> tuple[PowerLevel, ...]:
    """The paper's ladder: one step, all reducible lanes at once."""

    del levels  # gate has exactly one reduced state
    return (
        PowerLevel(
            name="1X",
            power_fraction=wrps.low_power_fraction,
            bandwidth_fraction=1.0 / _LANES,
            t_react_us=wrps.t_react_us,
            t_deact_us=wrps.t_deact_us,
        ),
    )


def width_levels(wrps: WRPSParams, levels: int = 3) -> tuple[PowerLevel, ...]:
    """DDCM-analogue lane ladder: 4X→2X→1X.

    ``levels`` counts width states including full (3 ⇒ 2X and 1X).  Power
    per width comes from the WRPS calibration (static floor + per-lane
    share); reactivation/deactivation scale with the number of lanes
    that must be brought back, so the shallow step is proportionally
    cheaper to recover from — that is the whole point of the ladder.
    """

    if not 2 <= levels <= 3:
        raise PolicySpecError(
            f"policy: width levels must be 2..3 (4X→2X→1X), got {levels}"
        )
    floor = _static_floor(wrps)
    max_off = _LANES - 1
    rungs = []
    for k in range(1, levels):
        lanes = _LANES >> k           # 2, then 1
        frac = lanes / _LANES
        off = _LANES - lanes
        rungs.append(
            PowerLevel(
                name=f"{lanes}X",
                power_fraction=floor + (1.0 - floor) * frac,
                bandwidth_fraction=frac,
                t_react_us=wrps.t_react_us * off / max_off,
                t_deact_us=wrps.t_deact_us * off / max_off,
            )
        )
    return tuple(rungs)


def scale_levels(wrps: WRPSParams, levels: int = 3) -> tuple[PowerLevel, ...]:
    """DVFS-analogue clock ladder: full/half/quarter/... speed.

    All lanes stay up; the SerDes clock halves per rung.  Power is
    quadratic in speed above the same static floor (CV²f with the rail
    tracking frequency), which makes deep clock scaling cheaper than
    lane shutdown at equal bandwidth — the classic DVFS-vs-DDCM trade.
    ``t_react`` grows with the frequency step (PLL relock + retrain).
    """

    if not 2 <= levels <= 5:
        raise PolicySpecError(
            f"policy: scale levels must be 2..5, got {levels}"
        )
    floor = _static_floor(wrps)
    deepest = 1.0 - 1.0 / (1 << (levels - 1))
    rungs = []
    for k in range(1, levels):
        speed = 1.0 / (1 << k)
        step = 1.0 - speed
        rungs.append(
            PowerLevel(
                name=f"1/{1 << k}clk",
                power_fraction=floor + (1.0 - floor) * speed * speed,
                bandwidth_fraction=speed,
                t_react_us=wrps.t_react_us * step / deepest,
                t_deact_us=wrps.t_deact_us * step / deepest,
            )
        )
    return tuple(rungs)


#: the registry: policy family name -> (summary, ladder builder)
POLICIES = {
    "gate": ("on/off WRPS lane gating (the paper)", gate_levels),
    "width": ("multi-level lane reduction, DDCM-analogue", width_levels),
    "scale": ("SerDes speed scaling, DVFS-analogue", scale_levels),
}


# ---------------------------------------------------------------------------
# spec grammar


#: per-class parameters a spec may set, with their coercions
_CLASS_PARAM_KEYS = {
    "levels": int,
    "t_react_us": float,
    "t_deact_us": float,
    "low": float,
    "gate_after_us": float,
}


@dataclass(frozen=True, slots=True)
class ClassPolicy:
    """The policy assigned to one link class, with its parameters."""

    policy: str = "none"
    levels: int = 0
    #: per-class WRPS parameter overrides (None -> the class default)
    t_react_us: float | None = None
    t_deact_us: float | None = None
    low: float | None = None
    #: reactive classes (trunk/switch): observed idle time before the
    #: first descent step; None -> the break-even 2 * t_react
    gate_after_us: float | None = None

    def __post_init__(self) -> None:
        if self.policy != "none" and self.policy not in POLICIES:
            raise PolicySpecError(
                f"unknown power policy {self.policy!r}; pick one of "
                f"{tuple(POLICIES)} or 'none'"
            )
        if self.low is not None and not 0.0 <= self.low <= 1.0:
            raise PolicySpecError("policy: low must be in [0, 1]")
        for name in ("t_react_us", "t_deact_us", "gate_after_us"):
            v = getattr(self, name)
            if v is not None and v < 0.0:
                raise PolicySpecError(f"policy: {name} must be >= 0")
        if self.levels and self.policy != "none":
            # validate eagerly so a typo'd spec fails at parse time
            POLICIES[self.policy][1](self.wrps(), self.levels)

    @property
    def active(self) -> bool:
        return self.policy != "none"

    def wrps(self, base: WRPSParams | None = None) -> WRPSParams:
        """This class's WRPS parameters: overrides applied on ``base``."""

        p = base or WRPSParams.paper()
        updates = {}
        if self.t_react_us is not None:
            updates["t_react_us"] = self.t_react_us
        if self.t_deact_us is not None:
            updates["t_deact_us"] = self.t_deact_us
        if self.low is not None:
            updates["low_power_fraction"] = self.low
        return dataclasses.replace(p, **updates) if updates else p

    def ladder(self, base: WRPSParams | None = None) -> tuple[PowerLevel, ...]:
        """The descent ladder this class's policy prescribes."""

        if not self.active:
            return ()
        build = POLICIES[self.policy][1]
        wrps = self.wrps(base)
        return build(wrps, self.levels) if self.levels else build(wrps)

    def hysteresis_us(self, base: WRPSParams | None = None) -> float:
        """Reactive idle wait before the first descent step."""

        if self.gate_after_us is not None:
            return self.gate_after_us
        return self.wrps(base).min_worthwhile_idle_us

    def describe(self) -> str:
        """Canonical value string, e.g. ``width:levels=3``."""

        if not self.active:
            return "none"
        parts = []
        for f in dataclasses.fields(self):
            if f.name == "policy":
                continue
            v = getattr(self, f.name)
            if v is None or v == f.default:
                continue
            parts.append(
                f"{f.name}={v:g}" if isinstance(v, float) else f"{f.name}={v}"
            )
        return self.policy + (":" + ",".join(parts) if parts else "")


#: the unmanaged class assignment
UNMANAGED = ClassPolicy()


@dataclass(frozen=True, slots=True)
class PolicySpec:
    """Parsed policy scenario: one :class:`ClassPolicy` per link class."""

    hca: ClassPolicy = field(default_factory=lambda: ClassPolicy("gate"))
    trunk: ClassPolicy = UNMANAGED
    switch: ClassPolicy = UNMANAGED

    @property
    def any_active(self) -> bool:
        return self.hca.active or self.trunk.active or self.switch.active

    @property
    def is_default(self) -> bool:
        return self == PolicySpec()

    def for_class(self, link_class: str) -> ClassPolicy:
        try:
            return getattr(self, link_class)
        except AttributeError:
            raise PolicySpecError(
                f"unknown link class {link_class!r}; pick one of "
                f"{LINK_CLASSES}"
            ) from None

    def describe(self) -> str:
        """Canonical spec string (class order fixed, defaults elided)."""

        parts = [
            f"{name}={self.for_class(name).describe()}"
            for name in LINK_CLASSES
            if self.for_class(name).active
        ]
        if not parts:
            return NO_POLICY
        return "policy:" + ",".join(parts)


def parse_policy(spec: "str | None") -> PolicySpec:
    """Parse a policy spec string into a :class:`PolicySpec`.

    Grammar: ``policy:class=family[:key=value][,key=value...],...`` with
    classes from :data:`LINK_CLASSES` and families from
    :data:`POLICIES` (plus ``none``).  A ``key=value`` item whose key is
    not a class name binds to the most recent class assignment, so
    ``policy:trunk=width:levels=3,switch=gate`` reads naturally.
    ``None`` / ``""`` defaults to ``policy:hca=gate``; ``"none"`` turns
    management off for every class.  Class order is irrelevant
    (assignments commute) and nothing is seeded — the parse is a pure
    function of the string.
    """

    if spec is None:
        return PolicySpec()
    text = spec.strip()
    if not text:
        return PolicySpec()
    if text == NO_POLICY:
        return PolicySpec(hca=UNMANAGED)
    head, _, body = text.partition(":")
    if head != "policy":
        raise PolicySpecError(
            f"policy spec must start with 'policy:' (or be '{NO_POLICY}'), "
            f"got {spec!r}"
        )
    if not body:
        raise PolicySpecError(
            "empty policy spec; write e.g. 'policy:hca=gate' "
            f"(or '{NO_POLICY}')"
        )
    assigned: dict[str, dict] = {}
    current: dict | None = None
    for item in body.split(","):
        key, sep, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not key or not value:
            raise PolicySpecError(
                f"policy spec entry {item!r} is not key=value"
            )
        if key in LINK_CLASSES:
            if key in assigned:
                raise PolicySpecError(
                    f"policy: link class {key!r} assigned twice"
                )
            name, psep, ptail = value.partition(":")
            current = {"policy": name}
            assigned[key] = current
            if psep:
                _bind_param(current, ptail, item)
        else:
            if current is None:
                raise PolicySpecError(
                    f"policy spec entry {item!r} names no link class; "
                    f"classes are {LINK_CLASSES}"
                )
            _bind_param(current, item, item)
    kwargs: dict[str, ClassPolicy] = {"hca": UNMANAGED}
    for cls, params in assigned.items():
        name = params.pop("policy")
        if name == "none":
            if params:
                raise PolicySpecError(
                    f"policy: class {cls!r} is 'none' but has parameters"
                )
            kwargs[cls] = UNMANAGED
            continue
        kwargs[cls] = ClassPolicy(policy=name, **params)
    return PolicySpec(**kwargs)


def _bind_param(current: dict, text: str, item: str) -> None:
    """Attach one ``key=value`` parameter to a class assignment."""

    key, sep, value = text.partition("=")
    key = key.strip()
    value = value.strip()
    if not sep or not key or not value:
        raise PolicySpecError(f"policy spec entry {item!r} is not key=value")
    coerce = _CLASS_PARAM_KEYS.get(key)
    if coerce is None:
        raise PolicySpecError(
            f"unknown policy parameter {key!r}; valid parameters: "
            f"{tuple(_CLASS_PARAM_KEYS)}"
        )
    try:
        current[key] = coerce(value)
    except ValueError:
        raise PolicySpecError(
            f"policy parameter {key}={value!r} is not a valid "
            f"{coerce.__name__}"
        ) from None


def policy_help() -> str:
    """One-line grammar summary for CLI ``--help`` texts."""

    fams = "; ".join(f"{name}: {summary}" for name, (summary, _) in POLICIES.items())
    return (
        "'policy:class=family[:key=value,...],...' with classes "
        f"{'/'.join(LINK_CLASSES)} and families {fams}. Parameters: "
        "levels, t_react_us, t_deact_us, low, gate_after_us. "
        f"Default '{DEFAULT_POLICY}' (the paper); '{NO_POLICY}' disables "
        "all management"
    )


# ---------------------------------------------------------------------------
# directive-driven multi-level controller (hca width / scale)


@dataclass(slots=True)
class LeveledLink:
    """Prediction-driven descent over a multi-level ladder.

    The runtime's shutdown directive carries the predicted idle timer;
    the controller picks the *deepest* rung whose break-even
    (``2 * t_react``) fits inside the prediction, programs the hardware
    timer exactly like the paper's gate, and pays that rung's (cheaper)
    reactivation on timer fire or misprediction.  With a single rung
    this reduces to :class:`~repro.power.controller.ManagedLink`'s
    protocol; ``gate`` keeps using ``ManagedLink`` itself so the default
    spec replays the untouched code path.
    """

    link: Link
    params: WRPSParams
    levels: tuple[PowerLevel, ...]
    account: LinkEnergyAccount
    counters: PowerEventCounters = field(default_factory=PowerEventCounters)
    _t_fire_us: float | None = None
    _t_deact_end_us: float = 0.0
    #: index into ``levels`` of the rung currently descended to
    _level: int = 0
    wake_faults: "object | None" = None
    wake_key: int = 0
    _pending_spike_us: float = 0.0

    @classmethod
    def create(
        cls,
        link: Link,
        cpol: ClassPolicy,
        base: WRPSParams | None = None,
        *,
        wake_faults=None,
        wake_key: int = 0,
        start_us: float = 0.0,
    ) -> "LeveledLink":
        p = cpol.wrps(base)
        levels = cpol.ladder(base)
        link.t_react_us = p.t_react_us
        return cls(
            link=link,
            params=p,
            levels=levels,
            account=LinkEnergyAccount(p, start_us=start_us),
            wake_faults=wake_faults,
            wake_key=wake_key,
        )

    def power_of(self, mode: LinkPowerMode) -> float:
        return self.params.power_of(mode)

    def _pick_level(self, timer_us: float) -> int | None:
        """Deepest rung whose break-even fits the predicted window."""

        best = None
        for i, lv in enumerate(self.levels):
            if timer_us > max(2.0 * lv.t_react_us, lv.t_deact_us):
                best = i
        return best

    def worthwhile(self, predicted_idle_us: float) -> bool:
        return self._pick_level(predicted_idle_us) is not None

    def shutdown(self, t_off_us: float, timer_us: float) -> bool:
        pick = self._pick_level(timer_us)
        if pick is None:
            self.counters.skipped_too_short += 1
            return False
        self._settle(t_off_us)
        if self.link.mode is not LinkPowerMode.FULL:
            self.counters.skipped_not_full += 1
            return False
        lv = self.levels[pick]
        t_low = t_off_us + lv.t_deact_us
        self.account.switch_mode(t_off_us, LinkPowerMode.TRANSITION)
        self.account.set_state(t_low, LinkPowerMode.LOW, lv.power_fraction)
        self.link.mode = LinkPowerMode.LOW
        self._level = pick
        self._t_fire_us = t_off_us + timer_us
        self._t_deact_end_us = t_low
        if self.wake_faults is not None:
            self._pending_spike_us = self.wake_faults.spike(
                self.wake_key, self.counters.shutdowns
            )
        self.counters.shutdowns += 1
        return True

    def request_full(self, t_us: float) -> float:
        self._settle(t_us)
        mode = self.link.mode
        if mode is LinkPowerMode.FULL:
            return t_us
        if mode is LinkPowerMode.LOW:
            lv = self.levels[self._level]
            start = max(t_us, self._t_deact_end_us)
            ready = start + lv.t_react_us + self._consume_spike()
            self.account.switch_mode(start, LinkPowerMode.TRANSITION)
            self.account.switch_mode(ready, LinkPowerMode.FULL)
            self.link.mode = LinkPowerMode.FULL
            self._t_fire_us = None
            self.counters.emergency_reactivations += 1
            self.counters.total_penalty_us += ready - t_us
            return ready
        ready = max(t_us, self.link.reactivation_done_us)
        penalty = ready - t_us
        if penalty > 0:
            self.counters.late_reactivations += 1
            self.counters.total_penalty_us += penalty
        return ready

    def finish(self, t_end_us: float) -> None:
        self._settle(t_end_us)
        self.account.close(t_end_us)

    def _settle(self, t_us: float) -> None:
        if self._t_fire_us is None:
            return
        t_fire = self._t_fire_us
        lv = self.levels[self._level]
        t_full = t_fire + lv.t_react_us + self._pending_spike_us
        if t_us >= t_fire:
            self.account.switch_mode(t_fire, LinkPowerMode.TRANSITION)
            if t_us >= t_full:
                self.account.switch_mode(t_full, LinkPowerMode.FULL)
                self.link.mode = LinkPowerMode.FULL
                self._t_fire_us = None
                self.counters.timer_reactivations += 1
                self._consume_spike()
            else:
                self.link.mode = LinkPowerMode.TRANSITION
                self.link.reactivation_done_us = t_full

    def _consume_spike(self) -> float:
        spike = self._pending_spike_us
        if spike > 0.0:
            self.counters.wake_timeouts += 1
            self.counters.wake_timeout_extra_us += spike
            self._pending_spike_us = 0.0
        return spike


# ---------------------------------------------------------------------------
# reactive controllers (trunk links, switches)


class _PowerShadow:
    """Stand-in for a link's power-state fields.

    When a link needs *two* controllers (an HCA's prediction-driven one
    composed with its switch's reactive gate), the real ``Link.mode`` is
    pinned LOW so the fabric hook keeps firing, and the prediction-driven
    controller does its FULL/LOW bookkeeping on this shadow instead.
    """

    __slots__ = ("mode", "reactivation_done_us", "t_react_us")

    def __init__(self) -> None:
        self.mode = LinkPowerMode.FULL
        self.reactivation_done_us = 0.0
        self.t_react_us = 0.0


@dataclass(slots=True)
class IdleGatedLink:
    """Reactive descent ladder for links without a prediction source.

    The hardware steps one rung deeper after each ``gate_after_us`` of
    observed idleness and pays the current rung's ``t_react`` when
    traffic returns.  The owning replay pins ``Link.mode = LOW`` so the
    fabric's power-block hook delivers every transfer's head-arrival
    time here; the controller reconstructs the staircase for the idle
    gap it just observed from the channels' busy logs (deterministic:
    both kernels issue identical transfer sequences), charges it to the
    energy account, and returns when the link is usable.
    """

    channels: tuple
    levels: tuple[PowerLevel, ...]
    params: WRPSParams
    gate_after_us: float
    account: LinkEnergyAccount
    counters: PowerEventCounters = field(default_factory=PowerEventCounters)
    #: reactivation in flight until this instant (0 = none pending)
    _ready_us: float = 0.0

    @classmethod
    def create(
        cls,
        link: Link,
        cpol: ClassPolicy,
        base: WRPSParams | None = None,
        *,
        start_us: float = 0.0,
    ) -> "IdleGatedLink":
        p = cpol.wrps(base)
        return cls(
            channels=(link.forward, link.backward),
            levels=cpol.ladder(base),
            params=p,
            gate_after_us=cpol.hysteresis_us(base),
            account=LinkEnergyAccount(p, start_us=start_us),
            _ready_us=start_us,
        )

    def power_of(self, mode: LinkPowerMode) -> float:
        return self.params.power_of(mode)

    # reactive controllers take no directives; the protocol methods exist
    # so every registered policy drives through one interface
    def worthwhile(self, predicted_idle_us: float) -> bool:
        return False

    def shutdown(self, t_off_us: float, timer_us: float) -> bool:
        return False

    def _last_traffic_end_us(self) -> float:
        u = self._ready_us
        for ch in self.channels:
            ends = ch.busy_ends
            if ends and ends[-1] > u:
                u = ends[-1]
        return u

    def _descend(self, idle_from_us: float, t_us: float) -> int:
        """Charge the staircase over ``[idle_from, t)``; return the rung
        (1-based) the link had reached when traffic arrived at ``t``
        (0 = never left FULL)."""

        acc = self.account
        reached = 0
        cursor = idle_from_us + self.gate_after_us
        for lv in self.levels:
            if t_us < cursor:
                break
            deact_end = cursor + lv.t_deact_us
            acc.switch_mode(cursor, LinkPowerMode.TRANSITION)
            reached += 1
            if t_us < deact_end:
                # arrival mid-descent: the step completes, then the
                # reactivation starts (the gate protocol's rule)
                self._ready_us = max(self._ready_us, deact_end)
                break
            acc.set_state(deact_end, LinkPowerMode.LOW, lv.power_fraction)
            cursor = max(deact_end, cursor + self.gate_after_us)
        return reached

    def request_full(self, t_us: float) -> float:
        if t_us < self._ready_us:
            # a previous arrival already triggered the reactivation;
            # this transfer just waits out the remainder
            penalty = self._ready_us - t_us
            self.counters.late_reactivations += 1
            self.counters.total_penalty_us += penalty
            return self._ready_us
        u = self._last_traffic_end_us()
        if t_us <= u + self.gate_after_us:
            # busy, draining, or inside the hysteresis window: full width
            return t_us
        reached = self._descend(u, t_us)
        if reached == 0:
            return t_us
        lv = self.levels[reached - 1]
        start = max(t_us, self._ready_us)
        ready = start + lv.t_react_us
        self.account.switch_mode(start, LinkPowerMode.TRANSITION)
        self.account.switch_mode(ready, LinkPowerMode.FULL)
        self._ready_us = ready
        self.counters.shutdowns += 1
        self.counters.emergency_reactivations += 1
        self.counters.total_penalty_us += ready - t_us
        return ready

    def finish(self, t_end_us: float) -> None:
        u = self._last_traffic_end_us()
        if t_end_us > u + self.gate_after_us:
            # trailing idleness: the ladder descends and stays there —
            # this is where interior links bank most of their savings
            if self._descend(u, t_end_us) > 0:
                self.counters.shutdowns += 1
        self.account.close(t_end_us)


@dataclass(slots=True)
class GatedSwitch:
    """Reactive gating of one switch's non-link share (buffers/crossbar).

    Identical machinery to :class:`IdleGatedLink`, but "traffic" is any
    transfer through any of the switch's ports, and the account tracks
    the switch's *other* (non-link) power component — the Section VI
    deep-sleep extension, now driven by the policy registry and rolled
    up per switch by :func:`repro.power.switchpower.fabric_switch_rollup`.
    """

    node: object
    gate: IdleGatedLink

    @classmethod
    def create(
        cls,
        switch,
        cpol: ClassPolicy,
        base: WRPSParams | None = None,
        *,
        start_us: float = 0.0,
    ) -> "GatedSwitch":
        p = cpol.wrps(base)
        channels = []
        for link in switch.ports:
            channels.append(link.forward)
            channels.append(link.backward)
        gate = IdleGatedLink(
            channels=tuple(channels),
            levels=cpol.ladder(base),
            params=p,
            gate_after_us=cpol.hysteresis_us(base),
            account=LinkEnergyAccount(p, start_us=start_us),
            _ready_us=start_us,
        )
        return cls(node=switch.node, gate=gate)

    @property
    def account(self) -> LinkEnergyAccount:
        return self.gate.account

    @property
    def counters(self) -> PowerEventCounters:
        return self.gate.counters

    def power_of(self, mode: LinkPowerMode) -> float:
        return self.gate.power_of(mode)

    def worthwhile(self, predicted_idle_us: float) -> bool:
        return False

    def shutdown(self, t_off_us: float, timer_us: float) -> bool:
        return False

    def request_full(self, t_us: float) -> float:
        return self.gate.request_full(t_us)

    def finish(self, t_end_us: float) -> None:
        self.gate.finish(t_end_us)

    @property
    def sleep_power_fraction(self) -> float:
        """Power draw of the deepest rung (the rollup's sleep fraction)."""

        return self.gate.levels[-1].power_fraction if self.gate.levels else 1.0


# ---------------------------------------------------------------------------
# per-class savings rollup


@dataclass(frozen=True, slots=True)
class ClassSavings:
    """Energy outcome of one managed link class over a replay."""

    link_class: str
    policy: str
    members: int
    savings_pct: float
    low_residency_pct: float
    #: integral of normalised power over all members' timelines (us)
    energy_us: float
    #: sum of all members' timeline spans (us) — the always-on energy
    total_us: float


def class_savings_rows(
    spec: PolicySpec,
    class_accounts: "dict[str, list[LinkEnergyAccount]]",
) -> tuple[ClassSavings, ...]:
    """Fold per-controller accounts into one row per managed class.

    ``class_accounts`` maps link class -> the (closed) accounts of its
    controllers.  Energies sum account by account, so the rows'
    ``energy_us`` totals reproduce the fabric-level link-energy invariant
    exactly (the cluster tier's energy-sum check relies on this).
    """

    rows = []
    for name in LINK_CLASSES:
        accounts = class_accounts.get(name)
        if not accounts:
            continue
        total = 0.0
        energy = 0.0
        low = 0.0
        for acc in accounts:
            t, e, l = acc.integrate()
            total += t
            energy += e
            low += l
        rows.append(
            ClassSavings(
                link_class=name,
                policy=spec.for_class(name).describe(),
                members=len(accounts),
                savings_pct=(
                    100.0 * (1.0 - energy / total) if total > 0 else 0.0
                ),
                low_residency_pct=100.0 * low / total if total > 0 else 0.0,
                energy_us=energy,
                total_us=total,
            )
        )
    return tuple(rows)


__all__ = [
    "DEFAULT_POLICY",
    "NO_POLICY",
    "LINK_CLASSES",
    "POLICIES",
    "PolicySpecError",
    "PowerPolicy",
    "PowerLevel",
    "ClassPolicy",
    "PolicySpec",
    "parse_policy",
    "policy_help",
    "gate_levels",
    "width_levels",
    "scale_levels",
    "LeveledLink",
    "IdleGatedLink",
    "GatedSwitch",
    "ClassSavings",
    "class_savings_rows",
    "ManagedLink",
]
