"""Link power-state definitions and WRPS parameters.

The paper's link operates in three modes (Section III-B):

* **full** — all four lanes active, nominal power (1.0);
* **low** — WRPS has shut down three lanes, 43 % of nominal;
* **transition** — lanes shifting between widths, charged at full power.

:class:`WRPSParams` bundles the numbers so ablations (deeper sleep,
different reactivation costs) are a parameter change, not a code change.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    DEEP_SLEEP_POWER_FRACTION,
    LOW_POWER_FRACTION,
    T_REACT_DEEP_US,
    T_REACT_US,
    TRANSITION_POWER_FRACTION,
)
from ..network.links import LinkPowerMode


@dataclass(frozen=True, slots=True)
class WRPSParams:
    """Width-Reduction Power Saving parameters for one link class."""

    low_power_fraction: float = LOW_POWER_FRACTION
    transition_power_fraction: float = TRANSITION_POWER_FRACTION
    t_react_us: float = T_REACT_US
    #: deactivation is overlapped with computation in the paper, but it
    #: still occupies the link in TRANSITION state for this long.
    t_deact_us: float = T_REACT_US

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_power_fraction <= 1.0:
            raise ValueError("low_power_fraction must be in [0, 1]")
        if not 0.0 <= self.transition_power_fraction <= 1.0:
            raise ValueError("transition_power_fraction must be in [0, 1]")
        if self.t_react_us < 0 or self.t_deact_us < 0:
            raise ValueError("transition times must be non-negative")

    @property
    def min_worthwhile_idle_us(self) -> float:
        """T_idle > 2*T_react: the paper's break-even idle duration."""

        return 2.0 * self.t_react_us

    def power_of(self, mode: LinkPowerMode) -> float:
        if mode is LinkPowerMode.FULL:
            return 1.0
        if mode is LinkPowerMode.LOW:
            return self.low_power_fraction
        return self.transition_power_fraction

    @classmethod
    def paper(cls) -> "WRPSParams":
        """Exactly the paper's numbers (43 %, 10 us)."""

        return cls()

    @classmethod
    def deep_sleep(cls) -> "WRPSParams":
        """Section VI extension: whole-switch sleep, ~1 ms reactivation."""

        return cls(
            low_power_fraction=DEEP_SLEEP_POWER_FRACTION,
            t_react_us=T_REACT_DEEP_US,
            t_deact_us=T_REACT_DEEP_US,
        )
