"""Power substrate: WRPS parameters, energy accounting, policy registry.

Implements the hardware side of the paper's mechanism: the Mellanox-style
Width Reduction Power Saving (43 % of nominal in 1X mode), the per-link
hardware reactivation timer (Fig. 5), energy integration over power-state
timelines, and switch-level aggregation for the Section VI extension —
generalised by :mod:`repro.power.policies` into a registry of policy
families (``gate``/``width``/``scale``) applicable per link class
(``hca``/``trunk``/``switch``) via ``policy:...`` spec strings.
"""

from .controller import ManagedLink, PowerEventCounters
from .model import (
    LinkEnergyAccount,
    PowerReport,
    StateInterval,
    aggregate,
    switch_level_savings_pct,
)
from .policies import (
    DEFAULT_POLICY,
    NO_POLICY,
    POLICIES,
    ClassPolicy,
    ClassSavings,
    GatedSwitch,
    IdleGatedLink,
    LeveledLink,
    PolicySpec,
    PolicySpecError,
    PowerLevel,
    PowerPolicy,
    class_savings_rows,
    parse_policy,
    policy_help,
)
from .states import WRPSParams
from .switchpower import SwitchPowerModel, fleet_switch_savings_pct

__all__ = [
    "ManagedLink",
    "PowerEventCounters",
    "LinkEnergyAccount",
    "PowerReport",
    "StateInterval",
    "aggregate",
    "switch_level_savings_pct",
    "WRPSParams",
    "SwitchPowerModel",
    "fleet_switch_savings_pct",
    "DEFAULT_POLICY",
    "NO_POLICY",
    "POLICIES",
    "ClassPolicy",
    "ClassSavings",
    "GatedSwitch",
    "IdleGatedLink",
    "LeveledLink",
    "PolicySpec",
    "PolicySpecError",
    "PowerLevel",
    "PowerPolicy",
    "class_savings_rows",
    "parse_policy",
    "policy_help",
]
