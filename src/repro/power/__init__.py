"""Power substrate: WRPS parameters, energy accounting, link controller.

Implements the hardware side of the paper's mechanism: the Mellanox-style
Width Reduction Power Saving (43 % of nominal in 1X mode), the per-link
hardware reactivation timer (Fig. 5), energy integration over power-state
timelines, and switch-level aggregation for the Section VI extension.
"""

from .controller import ManagedLink, PowerEventCounters
from .model import (
    LinkEnergyAccount,
    PowerReport,
    StateInterval,
    aggregate,
    switch_level_savings_pct,
)
from .states import WRPSParams
from .switchpower import SwitchPowerModel, fleet_switch_savings_pct

__all__ = [
    "ManagedLink",
    "PowerEventCounters",
    "LinkEnergyAccount",
    "PowerReport",
    "StateInterval",
    "aggregate",
    "switch_level_savings_pct",
    "WRPSParams",
    "SwitchPowerModel",
    "fleet_switch_savings_pct",
]
