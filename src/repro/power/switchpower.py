"""Switch-level power aggregation and the Section VI deep-sleep extension.

The paper's headline numbers follow the *link power* convention (LOW mode
at 43 % of nominal link power).  This module adds two refinements used in
EXPERIMENTS.md and the ablation benches:

1. **Whole-switch scaling** — the IBM 8-port 12X datum says links account
   for 64 % of switch power; the rest (input buffers, crossbar, control)
   stays on in the paper's main scheme.  :class:`SwitchPowerModel`
   converts per-link savings to whole-switch savings.
2. **Deep sleep** (Section VI future work) — powering down buffers and
   crossbar too, with reactivation up to a millisecond.  The ablation
   bench reruns the pipeline with :meth:`WRPSParams.deep_sleep`-style
   parameters to show how the predictor amortises long wake-ups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..constants import LINK_SHARE_OF_SWITCH_POWER
from .model import LinkEnergyAccount


@dataclass(frozen=True, slots=True)
class SwitchPowerModel:
    """Static power breakdown of one IB switch."""

    link_share: float = LINK_SHARE_OF_SWITCH_POWER

    def __post_init__(self) -> None:
        if not 0.0 < self.link_share <= 1.0:
            raise ValueError("link_share must be in (0, 1]")

    @property
    def other_share(self) -> float:
        return 1.0 - self.link_share

    def switch_savings_pct(self, link_savings_pct: float) -> float:
        """Whole-switch savings when only links are managed."""

        if link_savings_pct < 0:
            raise ValueError("negative savings")
        return link_savings_pct * self.link_share

    def switch_savings_with_deep_sleep_pct(
        self,
        link_savings_pct: float,
        other_low_residency_pct: float,
        other_sleep_power_fraction: float = 0.1,
    ) -> float:
        """Whole-switch savings if buffers/crossbar also sleep.

        ``other_low_residency_pct`` is the share of time the non-link
        components spend asleep; when asleep they draw
        ``other_sleep_power_fraction`` of their nominal power.
        """

        if not 0.0 <= other_low_residency_pct <= 100.0:
            raise ValueError("residency must be a percentage")
        other_sav = (other_low_residency_pct / 100.0) * (
            1.0 - other_sleep_power_fraction
        )
        return (
            link_savings_pct * self.link_share
            + 100.0 * other_sav * self.other_share
        )


def fleet_switch_savings_pct(
    accounts: Sequence[LinkEnergyAccount],
    model: SwitchPowerModel | None = None,
) -> float:
    """Average whole-switch savings over a set of closed link accounts."""

    if not accounts:
        raise ValueError("no accounts")
    m = model or SwitchPowerModel()
    link_sav = [100.0 * a.savings_fraction() for a in accounts]
    return m.switch_savings_pct(sum(link_sav) / len(link_sav))
