"""Switch-level power aggregation and the Section VI deep-sleep extension.

The paper's headline numbers follow the *link power* convention (LOW mode
at 43 % of nominal link power).  This module adds two refinements used in
EXPERIMENTS.md and the ablation benches:

1. **Whole-switch scaling** — the IBM 8-port 12X datum says links account
   for 64 % of switch power; the rest (input buffers, crossbar, control)
   stays on in the paper's main scheme.  :class:`SwitchPowerModel`
   converts per-link savings to whole-switch savings.
2. **Deep sleep** (Section VI future work) — powering down buffers and
   crossbar too, with reactivation up to a millisecond.  The ablation
   bench reruns the pipeline with :meth:`WRPSParams.deep_sleep`-style
   parameters to show how the predictor amortises long wake-ups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..constants import LINK_SHARE_OF_SWITCH_POWER
from .model import LinkEnergyAccount


@dataclass(frozen=True, slots=True)
class SwitchPowerModel:
    """Static power breakdown of one IB switch."""

    link_share: float = LINK_SHARE_OF_SWITCH_POWER

    def __post_init__(self) -> None:
        if not 0.0 < self.link_share <= 1.0:
            raise ValueError("link_share must be in (0, 1]")

    @property
    def other_share(self) -> float:
        return 1.0 - self.link_share

    def switch_savings_pct(self, link_savings_pct: float) -> float:
        """Whole-switch savings when only links are managed."""

        if link_savings_pct < 0:
            raise ValueError("negative savings")
        return link_savings_pct * self.link_share

    def switch_savings_with_deep_sleep_pct(
        self,
        link_savings_pct: float,
        other_low_residency_pct: float,
        other_sleep_power_fraction: float = 0.1,
    ) -> float:
        """Whole-switch savings if buffers/crossbar also sleep.

        ``other_low_residency_pct`` is the share of time the non-link
        components spend asleep; when asleep they draw
        ``other_sleep_power_fraction`` of their nominal power.
        """

        if not 0.0 <= other_low_residency_pct <= 100.0:
            raise ValueError("residency must be a percentage")
        other_sav = (other_low_residency_pct / 100.0) * (
            1.0 - other_sleep_power_fraction
        )
        return (
            link_savings_pct * self.link_share
            + 100.0 * other_sav * self.other_share
        )


def fleet_switch_savings_pct(
    accounts: Sequence[LinkEnergyAccount],
    model: SwitchPowerModel | None = None,
) -> float:
    """Average whole-switch savings over a set of closed link accounts."""

    if not accounts:
        raise ValueError("no accounts")
    m = model or SwitchPowerModel()
    link_sav = [100.0 * a.savings_fraction() for a in accounts]
    return m.switch_savings_pct(sum(link_sav) / len(link_sav))


@dataclass(frozen=True, slots=True)
class SwitchSavings:
    """Whole-switch savings of one switch, radix-aware.

    ``link_savings_pct`` is the mean over the switch's *managed* ports
    only; ``switch_savings_pct`` dilutes it over the full radix (the
    unmanaged ports — trunk cables and unmanaged hosts — stay at full
    power) before applying the link share of switch power, which is
    what makes rollups comparable between a 36-port fat-tree leaf and a
    p+a-1+h-port dragonfly router.
    """

    switch: str
    radix: int
    managed_links: int
    link_savings_pct: float
    switch_savings_pct: float


def fabric_switch_rollup(
    fabric,
    accounts: Sequence[LinkEnergyAccount],
    model: SwitchPowerModel | None = None,
    link_savings_pct: Sequence[float] | None = None,
    hosts: Sequence[int] | None = None,
    switch_accounts: "dict | None" = None,
) -> tuple[SwitchSavings, ...]:
    """Per-switch savings rollup over a replay's managed HCA accounts.

    ``accounts[rank]`` must be rank ``rank``'s HCA-link energy account
    (the :class:`~repro.sim.results.ManagedResult` convention).  Each
    account is attributed to the switch its host link lands on; every
    fabric switch gets a row — a switch carrying no managed link (a fat
    tree's spines, a dragonfly's host-free routers) contributes zero
    savings at its full radix, so the fleet rollup stays comparable
    *across* families instead of silently dropping the all-on part of
    one family's fabric.  Heterogeneous radixes are exactly why the
    dilution is per switch.

    ``hosts`` overrides the single-job ``accounts[rank] -> host rank``
    identity: cluster jobs occupy an arbitrary placement-chosen host
    set, so ``hosts[i]`` names the fabric host whose HCA link
    ``accounts[i]`` belongs to.

    ``switch_accounts`` maps switch node -> the (closed) energy account
    of that switch's *non-link* component, produced when the policy
    registry gates whole switches (``policy:...,switch=gate``).  A
    gated switch's row composes the diluted link savings with the
    other-share savings its own timeline integrates to — the per-class
    generalisation of :meth:`SwitchPowerModel.
    switch_savings_with_deep_sleep_pct`, exact for any descent ladder.
    """

    if hosts is not None and len(hosts) != len(accounts):
        raise ValueError(
            f"hosts maps {len(hosts)} accounts, got {len(accounts)}"
        )
    m = model or SwitchPowerModel()
    per_switch: dict = {node: [] for node in fabric.switches}
    for rank, account in enumerate(accounts):
        link = fabric.host_link(hosts[rank] if hosts is not None else rank)
        switch_node = next(e for e in link.endpoints if not e.is_host)
        per_switch[switch_node].append(
            # reuse the integrals a caller (replay_managed's aggregate)
            # already computed instead of re-walking every timeline
            link_savings_pct[rank]
            if link_savings_pct is not None
            else 100.0 * account.savings_fraction()
        )
    rows = []
    for node in sorted(per_switch):
        savings = per_switch[node]
        radix = fabric.switches[node].radix
        sacc = switch_accounts.get(node) if switch_accounts else None
        if sacc is not None:
            diluted = sum(savings) / radix if savings else 0.0
            switch_pct = (
                diluted * m.link_share
                + 100.0 * sacc.savings_fraction() * m.other_share
            )
        else:
            switch_pct = (
                m.switch_savings_pct(sum(savings) / radix)
                if savings else 0.0
            )
        rows.append(
            SwitchSavings(
                switch=str(node),
                radix=radix,
                managed_links=len(savings),
                link_savings_pct=(
                    sum(savings) / len(savings) if savings else 0.0
                ),
                switch_savings_pct=switch_pct,
            )
        )
    return tuple(rows)


def rollup_fleet_savings_pct(rows: Sequence[SwitchSavings]) -> float:
    """Radix-weighted fleet mean over a :func:`fabric_switch_rollup`.

    Weighting by radix makes big switches count proportionally to the
    power they draw, so mixed-radix fabrics aggregate correctly.
    """

    total_ports = sum(r.radix for r in rows)
    if total_ports == 0:
        return 0.0
    return sum(r.switch_savings_pct * r.radix for r in rows) / total_ports
