"""WRF-like numerical-weather-prediction trace generator.

WRF's signature in the paper's data is the most extreme of the five
applications: ~94 % of idle intervals are shorter than 20 us (hundreds of
per-field halo exchanges fired back-to-back) yet >98 % of accumulated
idle *time* sits in intervals longer than 200 us (the physics module
compute blocks).  Its Table III hit rate is the lowest (25-33 %) while
its savings are among the highest (36.8 % at 8 ranks) — most *calls* are
never predicted, but most long *windows* are.

We reproduce that decoupling structurally:

* a **dynamics burst** per step — ``dyn_fields`` + a varying number of
  acoustic/nesting exchanges, 2-6 us apart.  Its composition changes
  step to step, so the PPA can never lock onto it; it carries the bulk
  of the MPI calls (depressing the hit rate) but almost no idle time.
* a **physics chain** — ``phys_modules`` identical two-call halo grams
  (microphysics, cumulus, PBL, LSM, radiation, ...), each followed by a
  long compute window.  Because consecutive chain grams are *identical*,
  the PPA locks a bi-gram pattern early (``maxPatternSize`` = 2, the
  paper's natural-iteration cap) and re-arms within two grams after
  every dynamics-burst mismatch, so the chain's long windows are powered
  down every step even though the burst never matches.
"""

from __future__ import annotations

import numpy as np

from .base import WorkloadSpec, make_builders, ring_neighbors
from ..trace.trace import Trace


def build(spec: WorkloadSpec) -> Trace:
    """Generate a WRF-like trace for ``spec``."""

    trace = Trace.empty(
        "wrf",
        spec.nranks,
        iterations=spec.iterations,
        seed=spec.seed,
        scaling=spec.scaling,
    )
    builders = make_builders(trace, spec)
    cs = spec.compute_scale()
    ms = spec.message_scale()

    dyn_fields = 22
    phys_modules = 8
    halo_bytes = max(256, int(36_864 * ms))
    phys_window_us = 5700.0

    # global (SPMD-identical) step structure: the dynamics burst length
    # varies with the acoustic sub-step count and nest feedback
    struct_rng = np.random.default_rng(spec.seed ^ 0x775246)
    burst_extra = [int(struct_rng.integers(0, 5)) for _ in range(spec.iterations)]

    def burst(b, nfields: int, size: int, tag0: int, flip: bool) -> None:
        right, left = ring_neighbors(b.rank, spec.nranks)
        for f in range(nfields):
            fwd = (f % 2 == 0) ^ flip
            dst, src = (right, left) if fwd else (left, right)
            b.sendrecv(dst, src, size, tag=tag0 + f)
            b.compute(float(b.rng.uniform(2.0, 6.0)))

    for it in range(spec.iterations):
        for b in builders:
            right, left = ring_neighbors(b.rank, spec.nranks)
            # -- dynamics + acoustic burst: most calls, varying length,
            #    negligible idle around it
            burst(b, dyn_fields + burst_extra[it], halo_bytes, 100, flip=False)
            # small window before physics starts (lost to re-arming)
            b.compute(0.25 * phys_window_us * cs)
            # -- physics chain: identical two-call grams guarding long
            #    windows; the PPA's locked bi-gram rides this chain
            for m in range(phys_modules):
                b.sendrecv(right, left, halo_bytes // 2, tag=200 + m)
                b.compute(float(b.rng.uniform(2.0, 6.0)))
                b.sendrecv(left, right, halo_bytes // 2, tag=220 + m)
                b.compute(phys_window_us * cs)
    return trace
