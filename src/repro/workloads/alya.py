"""ALYA-like computational-mechanics trace generator.

ALYA (BSC's multi-physics FEM code) is the paper's worked example: its
per-iteration stream is three Sendrecv calls back-to-back followed by two
separate Allreduce calls (Fig. 2's ``41-41-41 ... 10 ... 10``).  The
pattern is extremely regular — Table III reports a 93 % hit rate at every
process count — but the *savings* are the lowest of the five apps
(13.9-17 % at 8-ranks falling to ~2 % at 128) because ALYA is
communication-heavy: large halo messages and assembly reductions occupy
much of the timeline, leaving comparatively little idle time to harvest.

We reproduce exactly that: big rendezvous-size Sendrecv payloads, two
scalar Allreduce convergence checks, moderate compute gaps, and a
solver-restart phase every ``restart_every`` iterations that briefly
breaks the pattern (keeping the hit rate near, not at, 100 %).
"""

from __future__ import annotations

from .base import WorkloadSpec, make_builders, ring_neighbors
from ..trace.trace import Trace


def build(spec: WorkloadSpec) -> Trace:
    """Generate an ALYA-like trace for ``spec``."""

    trace = Trace.empty(
        "alya",
        spec.nranks,
        iterations=spec.iterations,
        seed=spec.seed,
        scaling=spec.scaling,
    )
    builders = make_builders(trace, spec)
    cs = spec.compute_scale()
    ms = spec.message_scale()

    halo_bytes = max(1024, int(47_185_920 * ms))   # ~2.5 MB at 8 ranks
    restart_every = 25

    for it in range(spec.iterations):
        for b in builders:
            right, left = ring_neighbors(b.rank, spec.nranks)
            # -- matrix assembly halo: the 41-41-41 gram of Fig. 2
            b.sendrecv(right, left, halo_bytes, tag=11)
            b.compute(float(b.rng.uniform(2.0, 6.0)))
            b.sendrecv(left, right, halo_bytes, tag=12)
            b.compute(float(b.rng.uniform(2.0, 6.0)))
            b.sendrecv(right, left, halo_bytes // 2, tag=13)
            # -- local solve (idle window 1)
            b.compute(3600.0 * cs)
            # -- first convergence Allreduce (the first 10 of Fig. 2)
            b.allreduce(2048)
            # -- residual update (idle window 2)
            b.compute(2880.0 * cs)
            # -- second convergence Allreduce (the second 10)
            b.allreduce(2048)
            # -- preconditioner refresh (idle window 3, wrap gap)
            b.compute(4680.0 * cs)
        if (it + 1) % restart_every == 0:
            for b in builders:
                b.barrier()
                b.bcast(max(64, int(49152 * ms)), root=0)
                b.compute(2160.0 * cs)
    return trace
