"""NAS MG (Multi-Grid) trace generator.

MG's V-cycle gives it the most *geometric* idle-gap distribution of the
five applications: each level of the grid hierarchy halves the mesh, so
the compute time between halo exchanges shrinks ~8x per level.  The
fine-grid smoother leaves long (>200 us) windows; mid levels leave gaps
in the 20-200 us band — which is why MG owns the largest medium bucket in
Table I (~37 % of intervals at 8 ranks) and why the paper's chosen GT for
MG is far larger than for any other code (150-382 us): only a GT that
swallows the unstable mid-level gaps keeps the grams consistent.

Structure per V-cycle iteration:

* pre-smoothing on the fine grid (long compute), then for each level
  down to the coarsest: a 3-Sendrecv halo gram followed by a compute
  burst that shrinks geometrically (and jitters substantially — the
  pattern breaker when GT is chosen too small);
* coarsest-level solve with an Allreduce;
* the mirrored prolongation path back up;
* post-smoothing (long compute) and a residual-norm Allreduce.
"""

from __future__ import annotations

import numpy as np

from .base import WorkloadSpec, make_builders, ring_neighbors
from ..trace.trace import Trace


def build(spec: WorkloadSpec) -> Trace:
    """Generate a NAS MG trace for ``spec``."""

    trace = Trace.empty(
        "nas_mg",
        spec.nranks,
        iterations=spec.iterations,
        seed=spec.seed,
        scaling=spec.scaling,
    )
    builders = make_builders(trace, spec)
    cs = spec.compute_scale()
    ms = spec.message_scale()

    levels = 4
    halo_bytes = [max(256, int(393_216 * ms) >> (2 * l)) for l in range(levels)]
    # mid-level compute bursts jitter widely (50-260 us at the reference
    # size): with a small GT the gram boundaries flip iteration to
    # iteration; a large GT merges them (Section IV-C's story for MG)
    level_compute = [4500.0, 150.0, 36.0, 9.0]

    struct_rng = np.random.default_rng(spec.seed ^ 0x4D47)
    extra_smooth = [struct_rng.random() < 0.12 for _ in range(spec.iterations)]

    def halo(b, level: int, tag_base: int) -> None:
        right, left = ring_neighbors(b.rank, spec.nranks)
        b.sendrecv(right, left, halo_bytes[level], tag=tag_base)
        b.compute(float(b.rng.uniform(2.0, 5.0)))
        b.sendrecv(left, right, halo_bytes[level], tag=tag_base + 1)
        b.compute(float(b.rng.uniform(2.0, 5.0)))
        b.sendrecv(right, left, halo_bytes[level] // 2, tag=tag_base + 2)

    for it in range(spec.iterations):
        for b in builders:
            # pre-smoothing on the fine grid
            b.compute(3900.0 * cs)
            # restriction: down the hierarchy
            for level in range(levels):
                halo(b, level, tag_base=100 + 10 * level)
                mean = level_compute[level] * cs
                if level in (1, 2):
                    # the unstable mid-level bursts
                    b.compute(float(b.rng.uniform(0.5 * mean, 1.9 * mean)))
                else:
                    b.compute(mean)
            # coarsest solve
            b.allreduce(512)
            # prolongation: back up the hierarchy
            for level in reversed(range(levels)):
                halo(b, level, tag_base=200 + 10 * level)
                mean = 0.6 * level_compute[level] * cs
                if level in (1, 2):
                    b.compute(float(b.rng.uniform(0.5 * mean, 1.9 * mean)))
                else:
                    b.compute(mean)
            # post-smoothing + residual norm
            b.compute(3300.0 * cs)
            b.allreduce(512)
        if extra_smooth[it]:
            for b in builders:
                halo(b, 0, tag_base=300)
                b.compute(1560.0 * cs)
    return trace
