"""Workload generator framework.

The paper evaluates on MPI traces of five production HPC applications
captured on MareNostrum-class hardware.  Those traces are proprietary, so
this package synthesises per-application traces that reproduce the
*communication structure* the PPA actually consumes: the sequence of MPI
calls per rank, the grouping of calls into bursts (grams), the idle-gap
distribution between bursts (Table I's shape), the degree of iteration
regularity (Table III's hit-rate band), and strong-scaling compute
shrinkage (Figs. 7-9's trend).

Common machinery:

* :class:`WorkloadSpec` — name + nranks + iterations + seed + scaling;
* :class:`TraceBuilder` — per-rank cursor helpers (compute with jitter,
  paired sendrecv, collectives) on top of :class:`repro.trace.Trace`;
* log-normal multiplicative jitter on compute bursts, seeded and
  reproducible, modelling OS noise and per-iteration load imbalance.

Strong scaling divides a fixed total work pool over P ranks (the paper's
runs are strong scaling — "we use strong scaling traces where network
communication becomes more dominant in larger scale runs"); weak scaling
keeps per-rank work constant and is provided for the paper's Section VI
expectation ("our system would benefit more in weak scaling runs").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..trace.events import Collective, MPICall, PointToPoint
from ..trace.trace import ProcessTrace, Trace


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters shared by every application generator."""

    nranks: int
    iterations: int = 30
    seed: int = 1234
    scaling: str = "strong"           # "strong" | "weak"
    #: reference process count at which base_compute_us applies unscaled
    reference_ranks: int = 8
    #: multiplicative compute jitter (log-normal sigma); ~1.5 % noise
    jitter_sigma: float = 0.015

    def __post_init__(self) -> None:
        if self.nranks < 2:
            raise ValueError("need at least 2 ranks")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if self.scaling not in ("strong", "weak"):
            raise ValueError(f"unknown scaling mode {self.scaling!r}")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")

    def compute_scale(self) -> float:
        """Per-rank compute multiplier for this process count.

        Strong scaling: work pool fixed, per-rank share shrinks like
        ref/P.  Weak scaling: constant per-rank work.
        """

        if self.scaling == "weak":
            return 1.0
        return self.reference_ranks / self.nranks

    def message_scale(self) -> float:
        """Halo-message size multiplier under strong scaling.

        3-D domain decomposition: per-rank volume shrinks like 1/P, the
        halo surface like (1/P)^(2/3).
        """

        if self.scaling == "weak":
            return 1.0
        return (self.reference_ranks / self.nranks) ** (2.0 / 3.0)


class TraceBuilder:
    """Cursor-style helpers for writing one rank's records."""

    def __init__(self, trace: Trace, rank: int, rng: np.random.Generator,
                 jitter_sigma: float) -> None:
        self.trace = trace
        self.rank = rank
        self.proc: ProcessTrace = trace[rank]
        self.rng = rng
        self.jitter_sigma = jitter_sigma

    def compute(self, mean_us: float) -> None:
        """A jittered CPU burst (log-normal multiplicative noise)."""

        if mean_us <= 0:
            return
        if self.jitter_sigma > 0:
            factor = float(
                self.rng.lognormal(mean=0.0, sigma=self.jitter_sigma)
            )
        else:
            factor = 1.0
        self.proc.compute(mean_us * factor)

    def compute_exact(self, us: float) -> None:
        if us > 0:
            self.proc.compute(us)

    def sendrecv(self, dst: int, src: int, size_bytes: int, tag: int = 0) -> None:
        self.proc.append(
            PointToPoint(
                MPICall.SENDRECV, dst, size_bytes, tag, recv_peer=src
            )
        )

    def send(self, dst: int, size_bytes: int, tag: int = 0) -> None:
        self.proc.append(PointToPoint(MPICall.SEND, dst, size_bytes, tag))

    def recv(self, src: int, size_bytes: int, tag: int = 0) -> None:
        self.proc.append(PointToPoint(MPICall.RECV, src, size_bytes, tag))

    def isend(self, dst: int, size_bytes: int, tag: int = 0) -> None:
        self.proc.append(PointToPoint(MPICall.ISEND, dst, size_bytes, tag))

    def irecv(self, src: int, size_bytes: int, tag: int = 0) -> None:
        self.proc.append(PointToPoint(MPICall.IRECV, src, size_bytes, tag))

    def waitall(self) -> None:
        self.proc.append(PointToPoint(MPICall.WAITALL, self.rank, 0, 0))

    def allreduce(self, size_bytes: int) -> None:
        self.proc.append(Collective(MPICall.ALLREDUCE, size_bytes))

    def bcast(self, size_bytes: int, root: int = 0) -> None:
        self.proc.append(Collective(MPICall.BCAST, size_bytes, root))

    def barrier(self) -> None:
        self.proc.append(Collective(MPICall.BARRIER, 0))

    def reduce(self, size_bytes: int, root: int = 0) -> None:
        self.proc.append(Collective(MPICall.REDUCE, size_bytes, root))

    def allgather(self, size_bytes: int) -> None:
        self.proc.append(Collective(MPICall.ALLGATHER, size_bytes))


def make_builders(
    trace: Trace, spec: WorkloadSpec
) -> list[TraceBuilder]:
    """One seeded builder per rank (independent per-rank RNG streams)."""

    seq = np.random.SeedSequence(spec.seed)
    children = seq.spawn(trace.nranks)
    return [
        TraceBuilder(trace, r, np.random.default_rng(children[r]),
                     spec.jitter_sigma)
        for r in range(trace.nranks)
    ]


def ring_neighbors(rank: int, nranks: int) -> tuple[int, int]:
    """(next, previous) rank on a 1-D periodic ring."""

    return (rank + 1) % nranks, (rank - 1) % nranks


def grid_2d(nranks: int) -> tuple[int, int]:
    """Factor ``nranks`` into the most square 2-D grid (rows, cols)."""

    best = (1, nranks)
    for rows in range(1, int(math.isqrt(nranks)) + 1):
        if nranks % rows == 0:
            best = (rows, nranks // rows)
    return best


def grid_coords(rank: int, rows: int, cols: int) -> tuple[int, int]:
    return rank // cols, rank % cols


def grid_rank(r: int, c: int, rows: int, cols: int) -> int:
    return (r % rows) * cols + (c % cols)


class PointToPointMatcher:
    """Drift-free tag allocator for paired exchanges.

    All generators emit *matched* traffic (every send has its receive).
    To keep tags unambiguous across iterations we derive them from a
    per-phase counter shared by construction (all ranks run the same
    generator code), so the replay's (src, tag) matching never aliases.
    """

    def __init__(self, base: int = 100) -> None:
        self._next = base

    def tag(self) -> int:
        t = self._next
        self._next += 1
        return t


WorkloadFn = Callable[[WorkloadSpec], Trace]
