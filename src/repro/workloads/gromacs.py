"""GROMACS-like molecular dynamics trace generator.

Communication structure modelled (per MD step batch):

* **halo/force exchange** — two Sendrecv pairs with the +/-1 domain
  neighbours, message sizes ~tens of kB, separated by short force-kernel
  bursts whose durations straddle the 20 us mark (this is what gives
  GROMACS its messy Table I short/medium mix and the paper's erratic GT
  choices of 20-222 us — grams split or merge depending on GT);
* **long non-bonded force computation** (the main idle window);
* **energy Allreduce** every step;
* **neighbour-search step** every ``ns_every`` iterations: an Allgather
  plus a Bcast replace the regular structure and break the pattern, the
  way domain repartitioning interrupts GROMACS' steady-state rhythm
  (keeps the PPA hit rate in the paper's 42-59 % band).
"""

from __future__ import annotations

import numpy as np

from .base import TraceBuilder, WorkloadSpec, make_builders, ring_neighbors
from ..trace.trace import Trace


def build(spec: WorkloadSpec) -> Trace:
    """Generate a GROMACS-like trace for ``spec``."""

    trace = Trace.empty(
        "gromacs",
        spec.nranks,
        iterations=spec.iterations,
        seed=spec.seed,
        scaling=spec.scaling,
    )
    builders = make_builders(trace, spec)
    cs = spec.compute_scale()
    ms = spec.message_scale()

    halo_bytes = max(256, int(196_608 * ms))
    force_bytes = max(256, int(98_304 * ms))

    # per-iteration global structure decisions must be identical on all
    # ranks (SPMD): draw them once.  Two pattern breakers keep the hit
    # rate in the paper's 42-59 % band: dynamic-load-balancing steps add
    # an extra force exchange (~25 % of steps) and neighbour-search /
    # repartitioning steps replace the tail of the iteration (~10 %).
    struct_rng = np.random.default_rng(spec.seed ^ 0x6D6F6C)
    extra_force = [struct_rng.random() < 0.10 for _ in range(spec.iterations)]
    ns_step = [struct_rng.random() < 0.04 for _ in range(spec.iterations)]

    for it in range(spec.iterations):
        for b in builders:
            right, left = ring_neighbors(b.rank, spec.nranks)
            # -- halo exchange gram: 2 sendrecv + force sub-bursts
            b.sendrecv(right, left, halo_bytes, tag=10 + (it % 7))
            b.compute(float(b.rng.uniform(8.0, 26.0)))
            b.sendrecv(left, right, halo_bytes, tag=20 + (it % 7))
            b.compute(float(b.rng.uniform(8.0, 26.0)))
            b.sendrecv(right, left, force_bytes, tag=30 + (it % 7))
            if extra_force[it]:
                b.compute(float(b.rng.uniform(8.0, 26.0)))
                b.sendrecv(left, right, force_bytes, tag=35 + (it % 7))
            # -- long non-bonded force computation (main idle window)
            b.compute(6800.0 * cs)
            # -- energy reduction closes the step
            b.allreduce(256)
            # -- integration / constraints
            b.compute(3280.0 * cs)
        if ns_step[it]:
            # neighbour search: different calls, breaks the pattern
            for b in builders:
                b.allgather(max(64, int(8192 * ms)))
                b.compute(720.0 * cs)
                b.bcast(max(64, int(16384 * ms)), root=0)
                b.compute(360.0 * cs)
    return trace
