"""Workload substrate: synthetic traces for the paper's five applications.

Substitutes the proprietary production traces (GROMACS, ALYA, WRF,
NAS BT, NAS MG from MareNostrum-class hardware) with parameterised
generators that reproduce the communication *structure* the mechanism
feeds on; see DESIGN.md section 2 for the substitution rationale.
"""

from .base import (
    PointToPointMatcher,
    TraceBuilder,
    WorkloadSpec,
    grid_2d,
    grid_coords,
    grid_rank,
    make_builders,
    ring_neighbors,
)
from .registry import (
    APPLICATIONS,
    DISPLAY_NAMES,
    GENERATORS,
    PROCESS_COUNTS,
    make_trace,
    reference_ranks,
)
from .synthetic import (
    allreduce_storm,
    irregular_stream,
    ring_sweep,
    stencil_2d_exchange,
)

__all__ = [
    "PointToPointMatcher",
    "TraceBuilder",
    "WorkloadSpec",
    "grid_2d",
    "grid_coords",
    "grid_rank",
    "make_builders",
    "ring_neighbors",
    "APPLICATIONS",
    "DISPLAY_NAMES",
    "GENERATORS",
    "PROCESS_COUNTS",
    "make_trace",
    "reference_ranks",
    "allreduce_storm",
    "irregular_stream",
    "ring_sweep",
    "stencil_2d_exchange",
]
