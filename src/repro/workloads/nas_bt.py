"""NAS BT (Block Tri-diagonal) trace generator.

BT runs on a **square** number of processes (the paper uses 9, 16, 36,
64, 100) arranged in a sqrt(P) x sqrt(P) grid and performs, per
iteration, an Alternating Direction Implicit sweep: x-, y- and z-solve
phases, each exchanging faces with the grid neighbours in one dimension
around long dense-algebra compute blocks.

BT is the paper's best case: near-perfect regularity (97-98 % hit rate)
and the most compute-dominated timeline, giving the largest savings
(51.3 % at 9 processes with 1 % displacement).  We reproduce both: fixed
per-iteration structure with only log-normal compute jitter, and compute
blocks that dwarf the face-exchange costs.
"""

from __future__ import annotations

import math

from .base import WorkloadSpec, grid_coords, grid_rank, make_builders
from ..trace.trace import Trace


def is_square(n: int) -> bool:
    r = math.isqrt(n)
    return r * r == n


def build(spec: WorkloadSpec) -> Trace:
    """Generate a NAS BT trace; ``spec.nranks`` must be a perfect square."""

    if not is_square(spec.nranks):
        raise ValueError(
            f"NAS BT requires a square number of processes, got {spec.nranks}"
        )
    side = math.isqrt(spec.nranks)
    trace = Trace.empty(
        "nas_bt",
        spec.nranks,
        iterations=spec.iterations,
        seed=spec.seed,
        scaling=spec.scaling,
        grid=side,
    )
    builders = make_builders(trace, spec)
    # BT's reference size in the paper is 9 processes
    ref = spec.reference_ranks if spec.reference_ranks else 9
    cs = (ref / spec.nranks) if spec.scaling == "strong" else 1.0
    ms = cs ** (2.0 / 3.0)

    face_bytes = max(512, int(98_304 * ms))

    for _it in range(spec.iterations):
        for b in builders:
            row, col = grid_coords(b.rank, side, side)
            east = grid_rank(row, col + 1, side, side)
            west = grid_rank(row, col - 1, side, side)
            north = grid_rank(row + 1, col, side, side)
            south = grid_rank(row - 1, col, side, side)

            # x-solve: forward/backward substitution along the row
            b.compute(3600.0 * cs)
            b.sendrecv(east, west, face_bytes, tag=41)
            b.compute(float(b.rng.uniform(3.0, 7.0)))
            b.sendrecv(west, east, face_bytes, tag=42)
            # y-solve: along the column
            b.compute(3600.0 * cs)
            b.sendrecv(north, south, face_bytes, tag=43)
            b.compute(float(b.rng.uniform(3.0, 7.0)))
            b.sendrecv(south, north, face_bytes, tag=44)
            # z-solve: local in this decomposition, but faces still flow
            # through the transposed exchange
            b.compute(3600.0 * cs)
            b.sendrecv(east, west, face_bytes // 2, tag=45)
            b.compute(float(b.rng.uniform(3.0, 7.0)))
            b.sendrecv(west, east, face_bytes // 2, tag=46)
            # rhs update + residual
            b.compute(2700.0 * cs)
            b.allreduce(320)
    return trace
