"""Generic SPMD generators used by tests, examples and ablations.

These are not tied to any of the paper's five applications; they provide
controlled inputs for unit tests (perfectly periodic streams, known gap
distributions) and for the library's quickstart examples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import WorkloadSpec, make_builders, ring_neighbors
from ..trace.events import MPICall
from ..trace.trace import Trace


def ring_sweep(spec: WorkloadSpec, *, message_bytes: int = 8192,
               gap_us: float = 500.0) -> Trace:
    """The paper's Fig. 2 shape: 3 Sendrecv + 2 Allreduce per iteration.

    Perfectly periodic (up to compute jitter); the PPA should detect the
    ``(41,41,41)(10)(10)`` pattern after three iterations.
    """

    trace = Trace.empty("ring_sweep", spec.nranks,
                        iterations=spec.iterations, seed=spec.seed)
    builders = make_builders(trace, spec)
    for _ in range(spec.iterations):
        for b in builders:
            right, left = ring_neighbors(b.rank, spec.nranks)
            b.sendrecv(right, left, message_bytes, tag=1)
            b.compute(3.0)
            b.sendrecv(left, right, message_bytes, tag=2)
            b.compute(3.0)
            b.sendrecv(right, left, message_bytes, tag=3)
            b.compute(gap_us * spec.compute_scale())
            b.allreduce(64)
            b.compute(gap_us * spec.compute_scale())
            b.allreduce(64)
            b.compute(gap_us * spec.compute_scale())
    return trace


def stencil_2d_exchange(spec: WorkloadSpec, *, message_bytes: int = 32768,
                        compute_us: float = 800.0) -> Trace:
    """A 1-D-decomposed 2-point stencil with nonblocking halo exchange."""

    trace = Trace.empty("stencil", spec.nranks,
                        iterations=spec.iterations, seed=spec.seed)
    builders = make_builders(trace, spec)
    for it in range(spec.iterations):
        for b in builders:
            right, left = ring_neighbors(b.rank, spec.nranks)
            b.irecv(left, message_bytes, tag=it % 3)
            b.irecv(right, message_bytes, tag=it % 3)
            b.isend(right, message_bytes, tag=it % 3)
            b.isend(left, message_bytes, tag=it % 3)
            b.waitall()
            b.compute(compute_us * spec.compute_scale())
    return trace


def allreduce_storm(spec: WorkloadSpec, *, payload_bytes: int = 4096,
                    compute_us: float = 300.0) -> Trace:
    """Back-to-back Allreduce iterations (collective-dominated)."""

    trace = Trace.empty("allreduce_storm", spec.nranks,
                        iterations=spec.iterations, seed=spec.seed)
    builders = make_builders(trace, spec)
    for _ in range(spec.iterations):
        for b in builders:
            b.allreduce(payload_bytes)
            b.compute(compute_us * spec.compute_scale())
    return trace


def irregular_stream(spec: WorkloadSpec, *, break_probability: float = 0.5,
                     compute_us: float = 400.0) -> Trace:
    """A stream whose per-iteration structure changes at random.

    Stress input for the PPA: with high ``break_probability`` patterns
    rarely persist for three consecutive iterations, so prediction should
    mostly stay off (and the power mechanism must not hurt correctness).
    """

    trace = Trace.empty("irregular", spec.nranks,
                        iterations=spec.iterations, seed=spec.seed)
    builders = make_builders(trace, spec)
    struct_rng = np.random.default_rng(spec.seed ^ 0xBAD)
    variants = [
        int(struct_rng.integers(0, 3)) if struct_rng.random() < break_probability
        else 0
        for _ in range(spec.iterations)
    ]
    for it in range(spec.iterations):
        v = variants[it]
        for b in builders:
            right, left = ring_neighbors(b.rank, spec.nranks)
            for k in range(2 + v):
                b.sendrecv(right, left, 4096 << k, tag=50 + k)
                b.compute(3.0)
            if v == 2:
                b.barrier()
            b.allreduce(128)
            b.compute(compute_us * spec.compute_scale())
    return trace
