"""Registry of the paper's five applications and their run matrix.

The evaluation grid (Section IV-B): 8, 16, 32, 64, 128 processes for
four applications; NAS BT requires square counts and runs at 9, 16, 36,
64, 100.
"""

from __future__ import annotations

from typing import Callable

from . import alya, gromacs, nas_bt, nas_mg, wrf
from .base import WorkloadSpec
from ..trace.trace import Trace

#: generator per application name
GENERATORS: dict[str, Callable[[WorkloadSpec], Trace]] = {
    "gromacs": gromacs.build,
    "alya": alya.build,
    "wrf": wrf.build,
    "nas_bt": nas_bt.build,
    "nas_mg": nas_mg.build,
}

#: process counts per application, exactly as in the paper
PROCESS_COUNTS: dict[str, tuple[int, ...]] = {
    "gromacs": (8, 16, 32, 64, 128),
    "alya": (8, 16, 32, 64, 128),
    "wrf": (8, 16, 32, 64, 128),
    "nas_bt": (9, 16, 36, 64, 100),
    "nas_mg": (8, 16, 32, 64, 128),
}

#: display names used in the paper's tables and figures
DISPLAY_NAMES: dict[str, str] = {
    "gromacs": "GROMACS",
    "alya": "ALYA",
    "wrf": "WRF",
    "nas_bt": "NAS BT",
    "nas_mg": "NAS MG",
}

APPLICATIONS: tuple[str, ...] = tuple(GENERATORS)


def reference_ranks(app: str) -> int:
    """Smallest evaluated process count (the strong-scaling reference)."""

    return PROCESS_COUNTS[app][0]


def make_trace(
    app: str,
    nranks: int,
    *,
    iterations: int = 30,
    seed: int = 1234,
    scaling: str = "strong",
) -> Trace:
    """Build the trace of one (application, process count) cell."""

    if app not in GENERATORS:
        raise KeyError(
            f"unknown application {app!r}; choose from {sorted(GENERATORS)}"
        )
    if nranks not in PROCESS_COUNTS[app]:
        # allow off-grid sizes (tests, ablations) but keep the paper grid
        # documented; BT still requires squares, enforced by its builder.
        pass
    spec = WorkloadSpec(
        nranks=nranks,
        iterations=iterations,
        seed=seed,
        scaling=scaling,
        reference_ranks=reference_ranks(app),
    )
    return GENERATORS[app](spec)
