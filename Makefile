# Convenience targets for the reproduction pipeline.
#
#   make test         tier-1 test suite
#   make bench        full perf benchmark (writes benchmarks/out/BENCH_pipeline.json)
#   make bench-smoke  quick perf-regression gate: REPRO_ITERATIONS=10,
#                     fails on a >3x stage slowdown vs the recorded
#                     benchmarks/BENCH_pipeline.json
#   make bench-record re-record the smoke reference on this machine

PY ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-record

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m repro.cli bench

bench-smoke:
	REPRO_ITERATIONS=10 $(PY) -m repro.cli bench --smoke

bench-record:
	rm -f benchmarks/BENCH_pipeline.json
	REPRO_ITERATIONS=10 $(PY) -m repro.cli bench --smoke
