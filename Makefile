# Convenience targets for the reproduction pipeline.
#
#   make test         tier-1 test suite (everything)
#   make test-fast    unit/property tiers only — skips the cross-kernel
#                     differential matrix (tests/README.md describes the
#                     tier structure)
#   make test-full    everything test-fast runs plus the differential
#                     matrix (same as `make test`, named for symmetry)
#   make bench        full perf benchmark (writes benchmarks/out/BENCH_pipeline.json)
#   make bench-smoke  quick perf-regression gate: REPRO_ITERATIONS=10,
#                     fails on a >3x stage slowdown vs the recorded
#                     benchmarks/BENCH_pipeline.json (covers the compiled
#                     fast kernel and both schedulers' stage timings)
#   make bench-record re-record the smoke reference on this machine
#   make topo-smoke   gate the topology sweep: one small cell per family
#                     (fitted / torus / dragonfly / fattree2), each
#                     verified fast == reference kernel
#   make fault-smoke  gate the fault-injection sweep: one small faulted
#                     cell per family (plus the clean control rows),
#                     each verified fast == reference kernel under
#                     faults — including identical partitions
#   make cluster-smoke gate the multi-job cluster sweep: small job
#                     streams x placements x (fitted, torus), each cell
#                     verified (fast, calendar) == (reference, heap)
#                     bit-for-bit plus the per-job energy-sum invariant
#   make policy-smoke gate the power-policy registry: one small cell per
#                     policy family (gate / width / scale on the HCA
#                     class, plus trunk and switch management), each
#                     verified fast == reference kernel including the
#                     per-class savings rows
#   make service-smoke gate the simulation service end-to-end against a
#                     real daemon subprocess: cold == warm bit-for-bit
#                     (warm costs zero pipeline stages), worker SIGKILL
#                     mid-request -> structured error + daemon survives,
#                     full admission queue -> SERVICE_BUSY shed, SIGTERM
#                     drains queued work and exits 0

PY ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-full bench bench-smoke bench-record \
	topo-smoke fault-smoke cluster-smoke policy-smoke service-smoke

test:
	$(PY) -m pytest -x -q

test-fast:
	$(PY) -m pytest -x -q -m "not differential"

test-full:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m repro.cli bench

bench-smoke:
	REPRO_ITERATIONS=10 $(PY) -m repro.cli bench --smoke

bench-record:
	rm -f benchmarks/BENCH_pipeline.json
	REPRO_ITERATIONS=10 $(PY) -m repro.cli bench --smoke

topo-smoke:
	$(PY) -m repro.cli topo-sweep --apps alya --nranks 8 \
		--iterations 6 --verify

fault-smoke:
	$(PY) -m repro.cli fault-sweep --apps alya --nranks 8 \
		--iterations 6 --verify

cluster-smoke:
	$(PY) -m repro.cli cluster-sweep --iterations 6 --verify

policy-smoke:
	$(PY) -m repro.cli topo-sweep --apps alya --nranks 8 \
		--iterations 6 --topologies fattree2:leaf=4,ratio=2 \
		--policies "policy:hca=gate" "policy:hca=width" \
		"policy:hca=scale" "policy:hca=gate,trunk=gate" \
		"policy:hca=gate,trunk=width:levels=3,switch=gate" \
		--verify

service-smoke:
	$(PY) -m repro.service.smoke
