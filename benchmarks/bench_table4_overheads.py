"""Table IV — PPA overheads at 16 MPI processes.

Shape targets: the PPA runs on only a small share of MPI calls (~0.4 to
~5 % in the paper, avg 2.1 %), per-invocation overhead in the tens of
microseconds (7-26 us band), and an amortised cost of a few us per call.
"""

from conftest import emit

from repro.experiments import format_table4, run_table4
from repro.experiments.table4 import average_row


def test_table4_ppa_overheads(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table4(nranks=16), rounds=1, iterations=1
    )
    emit("table4_ppa_overheads", format_table4(rows))

    avg = average_row(rows)
    # the PPA must be dormant on the vast majority of calls
    assert avg.ppa_call_fraction_pct < 25.0
    # per-invocation cost in (or near) the paper's 7-26 us band
    assert 2.0 <= avg.per_invoked_call_us <= 40.0
    # amortised cost stays within a few microseconds per call
    assert avg.per_all_calls_us <= 6.0
    # every app pays at least the 1 us interception on every call
    assert all(r.per_all_calls_us >= 1.0 for r in rows)
