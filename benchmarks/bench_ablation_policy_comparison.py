"""Ablation — PPA vs reactive hardware on/off vs perfect oracle.

Places the paper's mechanism between the two brackets from its
introduction: the reactive scheme ("huge power saving potential, but
performance severely degraded" — every wake-up exposes T_react) and a
perfect-prediction oracle.  Run twice: with WRPS lane shutdown
(T_react = 10 us) and with Section VI's deep sleep (T_react = 1 ms),
where prediction's advantage over reactive wake-on-demand becomes
decisive.
"""

from conftest import emit

from repro.baselines import compare_policies
from repro.power import WRPSParams


def _run():
    wrps_fast = WRPSParams.paper()
    # deeper sleep: buffers/crossbar join the nap; reactivation in the
    # hundreds of microseconds (paper: "up to a millisecond").  BT at 9
    # ranks has ~3.6 ms windows, comfortably above the break-even.
    wrps_deep = WRPSParams(
        low_power_fraction=0.10, t_react_us=500.0, t_deact_us=500.0
    )
    shallow = compare_policies("nas_bt", 16, wrps=wrps_fast)
    deep = compare_policies("nas_bt", 9, wrps=wrps_deep)
    return shallow, deep


def test_policy_comparison(benchmark):
    shallow, deep = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "ablation_policy_comparison",
        "WRPS lane shutdown (T_react = 10 us)\n" + shallow.format()
        + "\n\nDeep sleep (T_react = 500 us)\n" + deep.format(),
    )

    for cmp in (shallow, deep):
        ppa = cmp.by_name("ppa")
        reactive = cmp.by_name("reactive")
        oracle = cmp.by_name("oracle")
        # the oracle bounds every policy's slowdown from below
        assert oracle.slowdown_pct <= ppa.slowdown_pct + 0.05
        assert oracle.slowdown_pct <= reactive.slowdown_pct + 0.05
        # reactive pays far more wake penalty than prediction
        assert reactive.wake_penalty_us > 2.0 * ppa.wake_penalty_us

    # with millisecond wake-ups, prediction beats reactive on slowdown
    # decisively (the paper's Section VI argument)
    assert (
        deep.by_name("reactive").slowdown_pct
        > deep.by_name("ppa").slowdown_pct
    )
