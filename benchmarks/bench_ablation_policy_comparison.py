"""Ablation — PPA vs reactive hardware on/off vs perfect oracle,
plus the per-class policy-registry axis.

Places the paper's mechanism between the two brackets from its
introduction: the reactive scheme ("huge power saving potential, but
performance severely degraded" — every wake-up exposes T_react) and a
perfect-prediction oracle.  Run twice: with WRPS lane shutdown
(T_react = 10 us) and with Section VI's deep sleep (T_react = 1 ms),
where prediction's advantage over reactive wake-on-demand becomes
decisive.

The second half sweeps the :mod:`repro.power.policies` registry's
per-link-class axis on one oversubscribed fat tree: the paper's
HCA-only gate against width/scale HCA ladders and trunk/switch
management, reporting per-class savings and the slowdown each scenario
pays.
"""

from conftest import emit

from repro.baselines import compare_policies
from repro.experiments.common import clear_cache, run_cell
from repro.power import WRPSParams

#: the per-class scenarios of the registry sweep (canonical specs)
CLASS_POLICIES = (
    "policy:hca=gate",
    "policy:hca=width:levels=3",
    "policy:hca=scale:levels=3",
    "policy:hca=gate,trunk=gate",
    "policy:hca=gate,trunk=width:levels=3,switch=gate",
)


def _run():
    wrps_fast = WRPSParams.paper()
    # deeper sleep: buffers/crossbar join the nap; reactivation in the
    # hundreds of microseconds (paper: "up to a millisecond").  BT at 9
    # ranks has ~3.6 ms windows, comfortably above the break-even.
    wrps_deep = WRPSParams(
        low_power_fraction=0.10, t_react_us=500.0, t_deact_us=500.0
    )
    shallow = compare_policies("nas_bt", 16, wrps=wrps_fast)
    deep = compare_policies("nas_bt", 9, wrps=wrps_deep)
    return shallow, deep


def test_policy_comparison(benchmark):
    shallow, deep = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "ablation_policy_comparison",
        "WRPS lane shutdown (T_react = 10 us)\n" + shallow.format()
        + "\n\nDeep sleep (T_react = 500 us)\n" + deep.format(),
    )

    for cmp in (shallow, deep):
        ppa = cmp.by_name("ppa")
        reactive = cmp.by_name("reactive")
        oracle = cmp.by_name("oracle")
        # the oracle bounds every policy's slowdown from below
        assert oracle.slowdown_pct <= ppa.slowdown_pct + 0.05
        assert oracle.slowdown_pct <= reactive.slowdown_pct + 0.05
        # reactive pays far more wake penalty than prediction
        assert reactive.wake_penalty_us > 2.0 * ppa.wake_penalty_us

    # with millisecond wake-ups, prediction beats reactive on slowdown
    # decisively (the paper's Section VI argument)
    assert (
        deep.by_name("reactive").slowdown_pct
        > deep.by_name("ppa").slowdown_pct
    )


def _run_class_axis():
    clear_cache()
    rows = []
    for policy in CLASS_POLICIES:
        cell = run_cell(
            "alya", 16, displacements=(0.05,), iterations=8, seed=1234,
            topology="fattree2:leaf=4,ratio=2", policy=policy,
        )
        rows.append(cell.managed[0.05])
    return rows


def test_policy_class_axis(benchmark):
    rows = benchmark.pedantic(_run_class_axis, rounds=1, iterations=1)
    by_policy = {m.policy: m for m in rows}

    lines = [
        f"{'Policy':50s} {'savings%':>9s} {'trunk%':>7s} "
        f"{'switch%':>8s} {'slowdn%':>8s}"
    ]
    for m in rows:
        lines.append(
            f"{m.policy:50s} {m.power_savings_pct:>9.2f} "
            f"{m.trunk_savings_pct:>7.2f} "
            f"{m.fleet_switch_savings_pct:>8.2f} "
            f"{m.exec_time_increase_pct:>8.3f}"
        )
    emit("ablation_policy_class_axis", "\n".join(lines))

    hca_only = by_policy["policy:hca=gate"]
    trunked = by_policy["policy:hca=gate,trunk=gate"]
    full = by_policy["policy:hca=gate,trunk=width:levels=3,switch=gate"]
    # trunk management must actually find savings on an oversubscribed
    # fat tree (ROADMAP open item 2's premise), at a bounded extra cost
    assert trunked.trunk_savings_pct > 0.0
    assert hca_only.trunk_savings_pct == 0.0
    # switch gating lifts the fleet whole-switch number beyond what the
    # HCA-only dilution can reach
    assert (
        full.fleet_switch_savings_pct > hca_only.fleet_switch_savings_pct
    )
    # managing more classes never *reduces* the HCA class's own savings
    # by more than reactivation-coupling noise
    assert (
        trunked.power_savings_pct > hca_only.power_savings_pct - 1.0
    )
