"""Ablation — instrumentation overheads on vs off (oracle software).

Quantifies how much of the managed run's slowdown is the PMPI software
cost (interception + PPA hashing) as opposed to reactivation penalties:
rerun WRF (the most call-dense workload) with ``charge_overheads``
disabled and compare.
"""

from conftest import emit

from repro.experiments import run_cell


def _run():
    with_oh = run_cell("wrf", 16, displacements=(0.01,), use_cache=False,
                       charge_overheads=True)
    without = run_cell("wrf", 16, displacements=(0.01,), use_cache=False,
                       charge_overheads=False)
    return with_oh, without


def test_overheads_vs_oracle(benchmark):
    with_oh, without = benchmark.pedantic(_run, rounds=1, iterations=1)
    m1, m0 = with_oh.managed[0.01], without.managed[0.01]
    lines = [
        f"{'variant':>22s} {'savings%':>9s} {'slowdown%':>10s}",
        f"{'PMPI overheads on':>22s} {m1.power_savings_pct:>9.2f} "
        f"{m1.exec_time_increase_pct:>10.3f}",
        f"{'oracle (no overheads)':>22s} {m0.power_savings_pct:>9.2f} "
        f"{m0.exec_time_increase_pct:>10.3f}",
    ]
    emit("ablation_overheads_oracle", "\n".join(lines))

    # the oracle can only be faster
    assert m0.exec_time_increase_pct <= m1.exec_time_increase_pct + 1e-6
    # overheads must not be the dominant cost of the mechanism: even with
    # them on, the slowdown stays in the paper's low-percent regime
    assert m1.exec_time_increase_pct < 3.0
    # savings are barely affected by the software overheads
    assert abs(m1.power_savings_pct - m0.power_savings_pct) < 5.0
