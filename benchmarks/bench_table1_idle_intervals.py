"""Table I — distribution of link idle intervals (5 apps x 5 sizes).

Regenerates the paper's motivation table: bucket counts and shares of
idle intervals below 20 us, between 20 and 200 us, and above 200 us.
Shape targets: >=99 % of accumulated idle time above 20 us at the
reference sizes; the >200 us bucket dominating the idle time.
"""

from conftest import emit, max_sizes

from repro.experiments import format_table1, run_table1
from repro.workloads import APPLICATIONS, PROCESS_COUNTS


def _rows():
    limit = max_sizes()
    rows = []
    for app in APPLICATIONS:
        sizes = PROCESS_COUNTS[app][:limit] if limit else PROCESS_COUNTS[app]
        from repro.experiments import run_cell
        from repro.experiments.table1 import build_row

        for nranks in sizes:
            rows.append(build_row(run_cell(app, nranks, displacements=())))
    return rows


def test_table1_idle_interval_distribution(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = format_table1(rows)
    emit("table1_idle_intervals", text)

    # paper-shape assertions: idle time overwhelmingly above 20 us
    for row in rows:
        assert row.distribution.reducible_time_share_pct > 88.0, (
            f"{row.app}@{row.nranks}: too much idle time below 20 us"
        )
    # reference sizes: the long bucket dominates (>= 90 % of idle time)
    for row in rows:
        if row.nranks == PROCESS_COUNTS[row.app][0]:
            assert row.distribution.long.time_share_pct > 90.0
