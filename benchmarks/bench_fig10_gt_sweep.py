"""Figure 10 — correctly-predicted-call rate vs grouping threshold.

GROMACS at 64 and 128 processes, GT swept from the 2*T_react minimum to
400 us.  Shape targets: the curve is non-trivial (spread between best
and worst GT) and the best GT for GROMACS sits in the paper's selected
range (20-240 us).
"""

from conftest import emit

from repro.analysis import line_plot
from repro.experiments import format_fig10, run_fig10


def test_fig10_gt_sweep_gromacs(benchmark):
    curves = benchmark.pedantic(
        lambda: run_fig10("gromacs", sizes=(64, 128)),
        rounds=1, iterations=1,
    )
    xs = [p.gt_us for p in curves[0].points]
    plot = line_plot(
        "correctly predicted MPI calls [%] vs GT (GROMACS)",
        xs,
        {f"{c.nranks} procs": [p.hit_rate_pct for p in c.points]
         for c in curves},
    )
    emit("fig10_gt_sweep", format_fig10(curves) + "\n" + plot)

    for curve in curves:
        hits = [p.hit_rate_pct for p in curve.points]
        assert max(hits) > 25.0
        # GT matters: the spread between best and worst is substantial
        assert max(hits) - min(hits) > 5.0
        assert 20.0 <= curve.best.gt_us <= 240.0
