"""Ablation — Section VI's deep-sleep extension.

The paper's future work: power down switch buffers/crossbars too, with
reactivation up to a millisecond, relying on the predictor to amortise
the long wake-up.  We rerun NAS BT (the most predictable code, hence the
paper's argument that "our power saving mechanism can better amortize
larger reactivation times") with T_react stepped from the WRPS 10 us to
the deep-sleep 1 ms, and report savings/slowdown plus the whole-switch
savings with the 64 % link-share model.
"""

from conftest import emit

from repro.experiments import run_cell
from repro.power import SwitchPowerModel, WRPSParams

REACT_STEPS = (10.0, 50.0, 200.0, 1000.0)


def _run():
    out = []
    for t_react in REACT_STEPS:
        params = WRPSParams(
            low_power_fraction=0.43 if t_react <= 10.0 else 0.10,
            t_react_us=t_react,
            t_deact_us=t_react,
        )
        cell = run_cell(
            "nas_bt", 16, displacements=(0.05,), wrps=params, use_cache=False
        )
        out.append((t_react, cell))
    return out


def test_deep_sleep_extension(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    model = SwitchPowerModel()
    lines = [f"{'T_react':>9s} {'link sav%':>10s} {'slowdown%':>10s} "
             f"{'switch sav% (64% share)':>24s}"]
    rows = []
    for t_react, cell in results:
        m = cell.managed[0.05]
        link_sav = m.power_savings_pct
        rows.append((t_react, link_sav, m.exec_time_increase_pct))
        lines.append(
            f"{t_react:>7.0f}us {link_sav:>10.2f} "
            f"{m.exec_time_increase_pct:>10.2f} "
            f"{model.switch_savings_pct(link_sav):>24.2f}"
        )
    emit("ablation_deep_sleep", "\n".join(lines))

    # all runs stay functional with bounded slowdown
    for t_react, sav, slow in rows:
        assert 0.0 <= sav <= 90.0
        assert slow < 8.0, f"T_react={t_react}: slowdown {slow}"
    # millisecond wake-ups shrink the usable window set: fewer savings
    # opportunities than the WRPS baseline at the same displacement
    # (deep sleep saves more *per* window, so compare window counts)
    shut_10 = sum(c.shutdowns for c in results[0][1].managed[0.05].counters)
    shut_1000 = sum(c.shutdowns for c in results[-1][1].managed[0.05].counters)
    assert shut_1000 <= shut_10
