"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper.  Outputs
are printed and also written to ``benchmarks/out/`` so the regenerated
artefacts survive the pytest capture.

Environment knobs:

* ``REPRO_ITERATIONS``   — trace length (default 40);
* ``REPRO_MAX_SIZES``    — truncate each application's size axis to the
  first N process counts (default: all 5) for quick runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def max_sizes() -> int | None:
    raw = os.environ.get("REPRO_MAX_SIZES")
    return int(raw) if raw else None


def emit(name: str, text: str) -> None:
    """Print a regenerated artefact and persist it under out/."""

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)


@pytest.fixture(scope="session", autouse=True)
def _report_configuration():
    from repro.experiments import default_iterations, table2_parameters

    lines = [f"{k}: {v}" for k, v in table2_parameters().items()]
    lines.append(f"trace iterations: {default_iterations()}")
    ms = max_sizes()
    lines.append(f"size-axis limit: {ms if ms else 'full paper grid'}")
    emit("table2_configuration", "\n".join(lines))
    yield
