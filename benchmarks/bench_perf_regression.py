"""Pipeline perf-regression benchmark: wall-clock per stage.

Times the planning-side stages (trace generation, baseline replay, GT
sweep, shared planning pass, managed replays) on a fixed seed and writes
``benchmarks/out/BENCH_pipeline.json`` so future PRs have a perf
trajectory to compare against.  The committed reference lives at
``benchmarks/BENCH_pipeline.json``; ``make bench-smoke`` (or
``python -m repro.cli bench --smoke``) fails on a >3x stage slowdown.
"""

from __future__ import annotations

import json

from conftest import OUT_DIR, emit

from repro import perf


def test_perf_regression_benchmark():
    result = perf.run_pipeline_benchmark()
    emit("pipeline_perf", perf.format_benchmark(result))
    perf.write_benchmark(result, OUT_DIR / "BENCH_pipeline.json")

    ref_path = perf.reference_path()
    if not ref_path.exists():
        return
    reference = json.loads(ref_path.read_text(encoding="utf-8"))
    if reference.get("config") != result.get("config"):
        # reference was recorded at other settings (e.g. smoke runs at
        # REPRO_ITERATIONS=10); timings are not comparable
        return
    problems = perf.compare_benchmark(result, reference)
    assert not problems, "; ".join(problems)
