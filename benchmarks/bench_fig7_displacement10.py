"""Figure 7 — power savings and slowdown at displacement 10 %.

Shape targets: average savings decreasing monotonically with the process
count (strong scaling); NAS BT the best saver at the reference size;
ALYA the worst; average slowdown well under 2 %.
"""

from conftest import emit, max_sizes

from repro.experiments import format_figure, run_figure


def test_fig7_displacement_10pct(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure(7, sizes_limit=max_sizes()),
        rounds=1, iterations=1,
    )
    emit("fig7_displacement10", format_figure(result))

    avg = result.average_savings()
    # strong scaling: savings shrink as P grows
    assert all(a >= b - 1.5 for a, b in zip(avg, avg[1:])), avg
    assert avg[0] > 15.0

    first = {app: s.savings_pct[0] for app, s in result.series.items()}
    assert max(first, key=first.get) == "nas_bt"
    assert min(first, key=first.get) == "alya"

    slow = result.max_average_slowdown_pct
    assert slow < 2.5, f"average slowdown too high: {slow}"
