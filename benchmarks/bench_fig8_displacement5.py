"""Figure 8 — power savings and slowdown at displacement 5 %.

Shape target: savings strictly between the 10 % (Fig. 7) and 1 %
(Fig. 9) operating points, with essentially unchanged slowdown.
"""

from conftest import emit, max_sizes

from repro.experiments import run_figure, format_figure


def test_fig8_displacement_5pct(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure(8, sizes_limit=max_sizes()),
        rounds=1, iterations=1,
    )
    emit("fig8_displacement5", format_figure(result))

    # compare against the neighbouring displacement points (cached cells)
    fig7 = run_figure(7, sizes_limit=max_sizes())
    fig9 = run_figure(9, sizes_limit=max_sizes())
    a7 = fig7.average_savings()
    a8 = result.average_savings()
    a9 = fig9.average_savings()
    for c in range(len(a8)):
        assert a9[c] + 1e-6 >= a8[c] >= a7[c] - 1e-6, (
            f"displacement ordering violated at column {c}: "
            f"{a9[c]:.2f} / {a8[c]:.2f} / {a7[c]:.2f}"
        )
    assert result.max_average_slowdown_pct < 2.5
