"""Microbenchmarks — throughput of the core components.

Unlike the table/figure benches (single-shot regenerations), these
measure steady-state performance of the reproduction's hot paths and
are where pytest-benchmark's statistics are meaningful:

* PPA event processing rate (events/second through the PMPI runtime);
* DES engine event throughput;
* fabric transfer computation rate;
* gram formation rate.
"""

from repro.core import GramBuilder, PMPIRuntime, RuntimeConfig
from repro.network.fabric import Fabric
from repro.sim.engine import Delay, Engine
from tests.conftest import alya_like_stream


def test_ppa_runtime_throughput(benchmark):
    events = alya_like_stream(200)  # 1000 MPI events

    def run():
        rt = PMPIRuntime(RuntimeConfig(gt_us=20.0, displacement=0.01))
        rt.process_stream(events)
        return rt.stats.total_calls

    calls = benchmark(run)
    assert calls == 1000


def test_gram_builder_throughput(benchmark):
    events = alya_like_stream(400)

    def run():
        b = GramBuilder(20.0)
        n = 0
        for ev in events:
            if b.feed(ev) is not None:
                n += 1
        return n

    grams = benchmark(run)
    assert grams >= 400 * 3 - 1


def test_engine_event_throughput(benchmark):
    def run():
        eng = Engine()

        def proc():
            for _ in range(2000):
                yield Delay(1.0)

        for _ in range(5):
            eng.spawn(proc())
        return eng.run()

    end = benchmark(run)
    assert end == 2000.0


def test_fabric_transfer_throughput(benchmark):
    fab = Fabric.for_ranks(64, seed=3)

    def run():
        fab.reset()
        t = 0.0
        for i in range(1000):
            timing = fab.transfer(i % 64, (i * 7 + 1) % 64, 4096, t)
            t = timing.depart_us
        return fab.messages_sent

    sent = benchmark(run)
    assert sent == 1000
