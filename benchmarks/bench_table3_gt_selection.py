"""Table III — chosen grouping threshold and MPI-call hit rate.

Shape targets from the paper: ALYA and NAS BT near the top of the hit
range, WRF lowest (25-33 %), NAS MG requiring a far larger GT than the
other codes (150-382 us in the paper).
"""

from conftest import emit, max_sizes

from repro.experiments import format_table3, run_cell
from repro.experiments.table3 import build_row
from repro.workloads import APPLICATIONS, PROCESS_COUNTS


def _rows():
    limit = max_sizes()
    rows = []
    for app in APPLICATIONS:
        sizes = PROCESS_COUNTS[app][:limit] if limit else PROCESS_COUNTS[app]
        for nranks in sizes:
            rows.append(build_row(run_cell(app, nranks, displacements=())))
    return rows


def test_table3_gt_and_hit_rate(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit("table3_gt_selection", format_table3(rows))

    by_app = {}
    for row in rows:
        by_app.setdefault(row.app, []).append(row)

    # every chosen GT respects the 2*T_react minimum
    assert all(r.gt_us >= 20.0 for r in rows)

    # WRF's hit rate is the lowest of the five applications
    mean = {a: sum(r.hit_rate_pct for r in rs) / len(rs)
            for a, rs in by_app.items()}
    assert mean["wrf"] == min(mean.values())

    # ALYA and BT are the most predictable codes (the bound is loose so
    # that REPRO_ITERATIONS-reduced smoke runs pass; at the default 40
    # iterations both land in the 80s, vs the paper's 93/97-98 obtained
    # on much longer production traces)
    assert mean["alya"] > 60.0
    assert mean["nas_bt"] > 60.0

    # MG needs a larger grouping threshold than the halo-burst codes
    mg_gt = max(r.gt_us for r in by_app["nas_mg"])
    assert mg_gt >= 150.0
