"""Ablation — displacement factor swept beyond the paper's three points.

The paper evaluates 1 %, 5 % and 10 %; this ablation extends the sweep
to 35 % to expose the full power/safety trade-off curve (Fig. 4's
narrative): savings decrease monotonically with the factor while timing
mispredictions vanish at large factors.
"""

from conftest import emit

from repro.experiments import run_cell

SWEEP = (0.01, 0.02, 0.05, 0.10, 0.20, 0.35)


def _run():
    cell = run_cell("gromacs", 16, displacements=SWEEP)
    return cell


def test_displacement_sweep(benchmark):
    cell = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"GROMACS @16, GT={cell.gt_us:.0f}us, hit={cell.hit_rate_pct:.1f}%",
             f"{'disp':>6s} {'savings%':>9s} {'slowdown%':>10s} "
             f"{'timing-mispred':>15s}"]
    rows = []
    for d in SWEEP:
        m = cell.managed[d]
        rows.append((d, m.power_savings_pct, m.exec_time_increase_pct,
                     m.total_mispredictions))
        lines.append(f"{d*100:>5.0f}% {rows[-1][1]:>9.2f} {rows[-1][2]:>10.3f} "
                     f"{rows[-1][3]:>15d}")
    emit("ablation_displacement_sweep", "\n".join(lines))

    savings = [r[1] for r in rows]
    # savings monotonically non-increasing in the displacement factor
    assert all(a >= b - 0.3 for a, b in zip(savings, savings[1:])), savings
    # larger safety margins cannot create *more* emergency wake-ups
    assert rows[-1][3] <= rows[0][3] + 2
