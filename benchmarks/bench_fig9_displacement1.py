"""Figure 9 — the paper's headline result: displacement 1 %.

Shape targets: the best average savings of the three operating points
(paper: 33.52 % at the reference sizes), monotone decrease with process
count, and average slowdown around (or under) the paper's ~1 %.
"""

from conftest import emit, max_sizes

from repro.analysis import hbar_chart
from repro.experiments.figs7_9 import SIZE_COLUMNS, run_figure, format_figure
from repro.workloads import DISPLAY_NAMES


def test_fig9_displacement_1pct(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure(9, sizes_limit=max_sizes()),
        rounds=1, iterations=1,
    )
    text = format_figure(result)
    ncols = max(len(s.sizes) for s in result.series.values())
    chart = hbar_chart(
        "(a) power savings [%]",
        SIZE_COLUMNS[:ncols],
        {DISPLAY_NAMES[a]: s.savings_pct for a, s in result.series.items()},
    )
    emit("fig9_displacement1", text + "\n\n" + chart)

    avg = result.average_savings()
    # the headline: >= ~20 % average savings at the reference size
    # (paper: 33.52 %; our synthetic traces land in the high 20s)
    assert avg[0] > 20.0, f"headline average savings too low: {avg[0]:.1f}%"
    # monotone decrease under strong scaling
    assert all(a >= b - 1.5 for a, b in zip(avg, avg[1:])), avg
    # per-app ordering at the reference size
    first = {app: s.savings_pct[0] for app, s in result.series.items()}
    assert max(first, key=first.get) == "nas_bt"
    assert min(first, key=first.get) == "alya"
    # slowdown stays around the paper's ~1 % average
    assert result.max_average_slowdown_pct < 2.0
